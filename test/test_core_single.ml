(* Tests for the single-disk algorithms: Aggressive, Conservative, Delay(d),
   Combination, and the exact optimum.  Anchored on the paper's introduction
   example and on the per-sequence forms of the paper's bounds. *)

let example1 () =
  Instance.single_disk ~k:4 ~fetch_time:4 ~initial_cache:[ 0; 1; 2; 3 ]
    [| 0; 1; 2; 3; 3; 4; 0; 3; 3; 1 |]

(* ------------------------------------------------------------------ *)
(* Anchors from the paper. *)

let test_aggressive_takes_naive_schedule () =
  (* On example 1 Aggressive fetches b5 at the request to b2 (the earliest
     moment a cached block is not requested before b5) and evicts b1, which
     is exactly the paper's "first option" with stall 3 / elapsed 13. *)
  let s = Aggressive.stats (example1 ()) in
  Alcotest.(check int) "stall" 3 s.Simulate.stall_time;
  Alcotest.(check int) "elapsed" 13 s.Simulate.elapsed_time

let test_opt_finds_better_schedule () =
  (* The paper's "better option": stall 1, elapsed 11 - and it is optimal. *)
  let o = Opt_single.solve (example1 ()) in
  Alcotest.(check int) "opt stall" 1 o.Opt_single.stall;
  (match Simulate.run (example1 ()) o.Opt_single.schedule with
   | Ok s -> Alcotest.(check int) "validated stall" 1 s.Simulate.stall_time
   | Error e -> Alcotest.failf "invalid opt schedule: %s" e.Simulate.reason)

let test_delay1_matches_opt_on_example1 () =
  Alcotest.(check int) "delay(1) stall" 1 (Delay.stall_time ~d:1 (example1 ()))

(* ------------------------------------------------------------------ *)
(* Random-instance generators. *)

let gen_instance ?(max_n = 18) ?(max_blocks = 8) ?(max_k = 5) ?(max_f = 5) () =
  QCheck2.Gen.(
    let* nblocks = int_range 2 max_blocks in
    let* n = int_range 1 max_n in
    let* seq = array_size (return n) (int_range 0 (nblocks - 1)) in
    let* k = int_range 1 max_k in
    let* f = int_range 1 max_f in
    let init = Instance.warm_initial_cache ~k seq in
    return (Instance.single_disk ~k ~fetch_time:f ~initial_cache:init seq))

let algorithms =
  [ ("aggressive", Aggressive.schedule);
    ("conservative", Conservative.schedule);
    ("delay0", Delay.schedule ~d:0);
    ("delay1", Delay.schedule ~d:1);
    ("delay3", Delay.schedule ~d:3);
    ("combination", Combination.schedule) ]

(* Every algorithm's schedule must pass the executor. *)
let prop_schedules_valid =
  QCheck2.Test.make ~count:300 ~name:"all schedules accepted by executor" (gen_instance ())
    (fun inst ->
       List.for_all
         (fun (name, alg) ->
            match Simulate.run inst (alg inst) with
            | Ok _ -> true
            | Error e ->
              QCheck2.Test.fail_reportf "%s rejected at t=%d: %s (%s)" name e.Simulate.at_time
                e.Simulate.reason
                (Format.asprintf "%a" Instance.pp inst))
         algorithms)

(* Delay(0) is exactly Aggressive (same schedule, not just same cost). *)
let prop_delay0_is_aggressive =
  QCheck2.Test.make ~count:300 ~name:"Delay(0) = Aggressive" (gen_instance ())
    (fun inst -> Delay.schedule ~d:0 inst = Aggressive.schedule inst)

(* Delay(n) performs the same replacements as Conservative: equal stall. *)
let prop_delay_inf_is_conservative =
  QCheck2.Test.make ~count:300 ~name:"Delay(n) stall = Conservative stall" (gen_instance ())
    (fun inst ->
       let d = Instance.length inst in
       Delay.stall_time ~d inst = Conservative.stall_time inst)

(* OPT lower-bounds every algorithm. *)
let prop_opt_lower_bounds =
  QCheck2.Test.make ~count:200 ~name:"OPT <= every algorithm" (gen_instance ())
    (fun inst ->
       let opt = Opt_single.stall_time inst in
       List.for_all
         (fun (name, alg) ->
            match Simulate.run inst (alg inst) with
            | Ok s ->
              if s.Simulate.stall_time >= opt then true
              else
                QCheck2.Test.fail_reportf "%s stall %d < OPT %d on %s" name s.Simulate.stall_time
                  opt
                  (Format.asprintf "%a" Instance.pp inst)
            | Error _ -> false)
         algorithms)

(* The greedy-content normalization: restricted DP = exhaustive search. *)
let prop_opt_matches_exhaustive =
  QCheck2.Test.make ~count:150 ~name:"Opt_single = Opt_exhaustive"
    (gen_instance ~max_n:12 ~max_blocks:6 ~max_k:4 ~max_f:4 ())
    (fun inst ->
       let a = Opt_single.stall_time inst in
       let b = Opt_exhaustive.solve_stall inst in
       if a = b then true
       else
         QCheck2.Test.fail_reportf "Opt_single=%d Opt_exhaustive=%d on %s" a b
           (Format.asprintf "%a" Instance.pp inst))

(* Theorem 1, per-sequence form: elapsed(Aggressive) <= elapsed(OPT)
   + F * ceil(n / (k + ceil(k/F) - 1)). *)
let prop_aggressive_theorem1 =
  QCheck2.Test.make ~count:200 ~name:"Aggressive within Theorem 1 budget" (gen_instance ())
    (fun inst ->
       let n = Instance.length inst in
       let k = inst.Instance.cache_size and f = inst.Instance.fetch_time in
       let phase_len = k + Bounds.ceil_div k f - 1 in
       let budget = f * Bounds.ceil_div n phase_len in
       let agg = Aggressive.elapsed_time inst in
       let opt = Opt_single.elapsed_time inst in
       if agg <= opt + budget then true
       else
         QCheck2.Test.fail_reportf "agg=%d opt=%d budget=%d on %s" agg opt budget
           (Format.asprintf "%a" Instance.pp inst))

(* Conservative's 2-approximation holds per sequence. *)
let prop_conservative_2approx =
  QCheck2.Test.make ~count:200 ~name:"Conservative <= 2 OPT (elapsed)" (gen_instance ())
    (fun inst ->
       let c = Conservative.elapsed_time inst in
       let opt = Opt_single.elapsed_time inst in
       c <= 2 * opt)

(* Conservative performs the minimum possible number of fetches (MIN). *)
let prop_conservative_min_fetches =
  QCheck2.Test.make ~count:200 ~name:"Conservative fetch count <= Aggressive's" (gen_instance ())
    (fun inst ->
       let cons = List.length (Conservative.schedule inst) in
       let agg = List.length (Aggressive.schedule inst) in
       cons <= agg)

(* Theorem 3 per-sequence (with an additive F of slack for segment
   boundary effects): elapsed(Delay(d)) <= c(d) * elapsed(OPT) + F. *)
let prop_delay_theorem3 =
  QCheck2.Test.make ~count:200 ~name:"Delay(d) within Theorem 3 bound"
    QCheck2.Gen.(pair (gen_instance ()) (int_range 0 8))
    (fun (inst, d) ->
       let f = inst.Instance.fetch_time in
       let c = Bounds.delay_bound ~d ~f in
       let dl = float_of_int (Delay.elapsed_time ~d inst) in
       let opt = float_of_int (Opt_single.elapsed_time inst) in
       if dl <= (c *. opt) +. float_of_int f +. 1e-9 then true
       else
         QCheck2.Test.fail_reportf "delay(%d)=%g bound=%g*%g on %s" d dl c opt
           (Format.asprintf "%a" Instance.pp inst))

(* Driver bookkeeping agrees with the executor on stall time. *)
let prop_driver_agrees_with_executor =
  QCheck2.Test.make ~count:200 ~name:"driver stall = executor stall" (gen_instance ())
    (fun inst ->
       let drv = Driver.run inst ~decide:Aggressive.decide in
       match Simulate.run inst (Driver.schedule drv) with
       | Ok s -> s.Simulate.stall_time = Driver.stall_time drv
       | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Theorem 2: the adversarial family. *)

let test_theorem2_construction_shape () =
  (* k=5, F=3: l = (k-1)/(F-1) = 2; each phase has k+l = 7 requests. *)
  let inst = Workload.theorem2_lower_bound ~k:5 ~fetch_time:3 ~phases:3 in
  Alcotest.(check int) "length" 21 (Instance.length inst);
  Alcotest.(check int) "initial cache size" 5 (List.length inst.Instance.initial_cache)

let test_theorem2_aggressive_suffers () =
  let k = 5 and f = 3 and phases = 4 in
  let inst = Workload.theorem2_lower_bound ~k ~fetch_time:f ~phases in
  let agg = Aggressive.elapsed_time inst in
  let opt = Opt_single.elapsed_time inst in
  let l = (k - 1) / (f - 1) in
  (* Paper: Aggressive needs k+l+F per phase; OPT needs k+l+2 per phase. *)
  Alcotest.(check bool)
    (Printf.sprintf "aggressive >= phases*(k+l+F) - slack (got %d)" agg)
    true
    (agg >= (phases * (k + l + f)) - f);
  Alcotest.(check bool) (Printf.sprintf "opt <= phases*(k+l+2) (got %d)" opt) true
    (opt <= phases * (k + l + 2));
  let ratio = float_of_int agg /. float_of_int opt in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.3f within Theorem 1 bound %.3f" ratio (Bounds.aggressive_upper ~k ~f))
    true
    (ratio <= Bounds.aggressive_upper ~k ~f +. 1e-9);
  (* The construction should already bite: ratio clearly above 1. *)
  Alcotest.(check bool) "ratio exceeds 1.05" true (ratio > 1.05)

let test_theorem2_requires_divisibility () =
  Alcotest.check_raises "bad params" (Invalid_argument "theorem2: requires (F-1) | (k-1)")
    (fun () -> ignore (Workload.theorem2_lower_bound ~k:6 ~fetch_time:4 ~phases:2))

(* ------------------------------------------------------------------ *)
(* Bounds formulas. *)

let test_bounds_formulas () =
  Alcotest.(check (float 1e-9)) "aggressive_upper k=5 F=3" 1.5 (Bounds.aggressive_upper ~k:5 ~f:3);
  Alcotest.(check (float 1e-9)) "cao k=5 F=3" 1.6 (Bounds.cao_aggressive_upper ~k:5 ~f:3);
  Alcotest.(check (float 1e-9)) "aggressive_upper caps at 2" 2.0 (Bounds.aggressive_upper ~k:2 ~f:50);
  Alcotest.(check (float 1e-9)) "lower k=5 F=3" (1.0 +. (3.0 /. 7.0)) (Bounds.aggressive_lower ~k:5 ~f:3);
  Alcotest.(check (float 1e-9)) "delay d=0 gives 2" 2.0 (Bounds.delay_bound ~d:0 ~f:7);
  Alcotest.(check int) "d0 for F=4" 2 (Bounds.delay_opt_d ~f:4);
  Alcotest.(check (float 1e-9)) "delay bound F=4 d=2" 1.8 (Bounds.delay_bound ~d:2 ~f:4);
  (* The optimal delay bound approaches sqrt 3 for large F. *)
  Alcotest.(check bool) "delay_opt_bound F=1000 near sqrt3" true
    (Float.abs (Bounds.delay_opt_bound ~f:1000 -. Bounds.sqrt3) < 0.01);
  (* Theorem 1 improves on Cao et al. for every k, F with F <= k. *)
  for k = 2 to 30 do
    for f = 2 to k do
      assert (Bounds.aggressive_upper ~k ~f <= Bounds.cao_aggressive_upper ~k ~f +. 1e-12)
    done
  done

(* Regression for the Corollary-1 off-by-one: the closed form
   ceil((sqrt 3 - 1)/2 * F) is asymptotic, and for small F (e.g. F = 3)
   the integer minimizer of delay_bound is d0 - 1.  delay_opt_d now scans,
   so exhaustively verify it returns a true minimizer for every F up to
   64, with d0 preferred on ties. *)
let test_delay_opt_d_minimizes () =
  for f = 1 to 64 do
    let returned = Bounds.delay_opt_d ~f in
    let returned_bound = Bounds.delay_bound ~d:returned ~f in
    (* brute-force minimum over a range safely past the upward branch *)
    let brute = ref infinity in
    for d = 0 to (4 * f) + 8 do
      brute := Float.min !brute (Bounds.delay_bound ~d ~f)
    done;
    if returned_bound > !brute +. 1e-12 then
      Alcotest.failf "F=%d: delay_opt_d returned d=%d (bound %.6f) but min is %.6f" f returned
        returned_bound !brute
  done;
  (* the documented small-F case where the closed form misses *)
  Alcotest.(check int) "F=3 minimizer is 1, not ceil-form 2" 1 (Bounds.delay_opt_d ~f:3);
  Alcotest.(check bool) "F=3: d=1 strictly beats d=2" true
    (Bounds.delay_bound ~d:1 ~f:3 < Bounds.delay_bound ~d:2 ~f:3 -. 1e-12)

let test_combination_choice () =
  (* Large k relative to F: Aggressive's bound is tiny, use Aggressive. *)
  (match Combination.choose ~k:100 ~f:2 with
   | Combination.Use_aggressive -> ()
   | Combination.Use_delay _ -> Alcotest.fail "expected Aggressive for k >> F");
  (* F close to k: Aggressive's bound approaches 2 > sqrt3: use Delay. *)
  (match Combination.choose ~k:8 ~f:8 with
   | Combination.Use_delay d -> Alcotest.(check int) "d0" (Bounds.delay_opt_d ~f:8) d
   | Combination.Use_aggressive -> Alcotest.fail "expected Delay for F ~ k")

(* Combination's bound is never worse than either classical bound. *)
let test_combination_dominates () =
  for k = 2 to 24 do
    for f = 2 to 24 do
      let c = Bounds.combination_bound ~k ~f in
      assert (c <= Bounds.aggressive_upper ~k ~f +. 1e-12);
      assert (c <= Bounds.conservative_upper +. 1e-12)
    done
  done

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_schedules_valid; prop_delay0_is_aggressive; prop_delay_inf_is_conservative;
      prop_opt_lower_bounds; prop_opt_matches_exhaustive; prop_aggressive_theorem1;
      prop_conservative_2approx; prop_conservative_min_fetches; prop_delay_theorem3;
      prop_driver_agrees_with_executor ]

let () =
  Alcotest.run "core-single"
    [ ( "paper anchors",
        [ Alcotest.test_case "Aggressive naive on example 1" `Quick test_aggressive_takes_naive_schedule;
          Alcotest.test_case "OPT = 1 on example 1" `Quick test_opt_finds_better_schedule;
          Alcotest.test_case "Delay(1) = OPT on example 1" `Quick test_delay1_matches_opt_on_example1 ] );
      ( "theorem 2 family",
        [ Alcotest.test_case "construction shape" `Quick test_theorem2_construction_shape;
          Alcotest.test_case "aggressive suffers" `Quick test_theorem2_aggressive_suffers;
          Alcotest.test_case "divisibility check" `Quick test_theorem2_requires_divisibility ] );
      ( "bounds",
        [ Alcotest.test_case "formulas" `Quick test_bounds_formulas;
          Alcotest.test_case "delay_opt_d minimizes" `Quick test_delay_opt_d_minimizes;
          Alcotest.test_case "combination choice" `Quick test_combination_choice;
          Alcotest.test_case "combination dominates" `Quick test_combination_dominates ] );
      ("properties", props) ]
