(* Tests for the summary-statistics helper. *)

let close = Alcotest.(check (float 1e-9))

let test_basic () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check int) "count" 4 s.Stats.count;
  close "mean" 2.5 s.Stats.mean;
  close "min" 1.0 s.Stats.minimum;
  close "max" 4.0 s.Stats.maximum;
  close "median" 2.5 s.Stats.median;
  close "stddev" (Float.sqrt 1.25) s.Stats.stddev

let test_single () =
  let s = Stats.summarize [ 7.0 ] in
  close "mean" 7.0 s.Stats.mean;
  close "median" 7.0 s.Stats.median;
  close "p90" 7.0 s.Stats.p90;
  close "stddev" 0.0 s.Stats.stddev

let test_empty () =
  Alcotest.(check int) "empty count" 0 (Stats.summarize []).Stats.count

let test_percentile () =
  close "p0" 1.0 (Stats.percentile [ 3.0; 1.0; 2.0 ] 0.0);
  close "p100" 3.0 (Stats.percentile [ 3.0; 1.0; 2.0 ] 1.0);
  close "p50 interp" 1.5 (Stats.percentile [ 1.0; 2.0 ] 0.5);
  (* The empty sample follows the same "no data = 0" convention as
     [summarize [] = empty], for every q. *)
  close "empty p0" 0.0 (Stats.percentile [] 0.0);
  close "empty p50" 0.0 (Stats.percentile [] 0.5);
  close "empty p100" 0.0 (Stats.percentile [] 1.0);
  Alcotest.check_raises "bad q" (Invalid_argument "Stats.percentile: q outside [0,1]")
    (fun () -> ignore (Stats.percentile [ 1.0 ] 1.5))

let gen_sample = QCheck2.Gen.(list_size (int_range 1 50) (float_bound_inclusive 100.0))

let prop_bounds =
  QCheck2.Test.make ~count:300 ~name:"min <= median <= p90 <= max, mean within [min,max]"
    gen_sample
    (fun xs ->
       let s = Stats.summarize xs in
       s.Stats.minimum <= s.Stats.median +. 1e-9
       && s.Stats.median <= s.Stats.p90 +. 1e-9
       && s.Stats.p90 <= s.Stats.maximum +. 1e-9
       && s.Stats.minimum <= s.Stats.mean +. 1e-9
       && s.Stats.mean <= s.Stats.maximum +. 1e-9)

let prop_shift_invariance =
  QCheck2.Test.make ~count:200 ~name:"stddev shift-invariant" gen_sample
    (fun xs ->
       let s1 = Stats.summarize xs in
       let s2 = Stats.summarize (List.map (fun x -> x +. 42.0) xs) in
       Float.abs (s1.Stats.stddev -. s2.Stats.stddev) < 1e-6)

let () =
  Alcotest.run "stats"
    [ ( "unit",
        [ Alcotest.test_case "basic" `Quick test_basic;
          Alcotest.test_case "single" `Quick test_single;
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "percentile" `Quick test_percentile ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_bounds; prop_shift_invariance ]) ]
