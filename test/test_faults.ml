(* Tests for the fault-injection layer: the Faults plan algebra, the
   degraded-mode executor (Simulate.run_faulty), the Resilient
   re-planning executor, the hardened trace parser and the typed
   Driver.Invalid_schedule channel.

   The anchor property is fault-free equivalence: with the empty plan,
   run_faulty must produce byte-identical stats to Simulate.run on every
   workload family - the fault machinery must cost the clean path
   nothing, not even a different attribution split. *)

let fetch = Fetch_op.make

let ok = function
  | Ok v -> v
  | Error (e : Simulate.error) ->
    Alcotest.failf "schedule rejected at t=%d: %s" e.Simulate.at_time e.Simulate.reason

(* ------------------------------------------------------------------ *)
(* Faults plan algebra. *)

let test_backoff () =
  let d retry attempt = Faults.backoff_delay retry ~attempt in
  Alcotest.(check int) "immediate" 0
    (d { Faults.backoff = Faults.Immediate; max_attempts = 3 } 1);
  Alcotest.(check int) "fixed" 5 (d { Faults.backoff = Faults.Fixed 5; max_attempts = 3 } 2);
  let exp = { Faults.backoff = Faults.Exponential { base = 1; factor = 2; max_delay = 8 };
              max_attempts = 9 } in
  Alcotest.(check (list int)) "exponential doubles then caps" [ 1; 2; 4; 8; 8 ]
    (List.map (fun a -> d exp a) [ 1; 2; 3; 4; 5 ])

let test_make_validation () =
  let rejects name f = Alcotest.check_raises name (Invalid_argument "") (fun () ->
      try f () with Faults.Invalid_plan _ -> raise (Invalid_argument ""))
  in
  rejects "fail_prob 1 (would livelock)" (fun () ->
      ignore (Faults.make ~fail_prob:1.0 ()));
  rejects "jitter_prob without max_jitter" (fun () ->
      ignore (Faults.make ~jitter_prob:0.5 ()));
  rejects "empty outage window" (fun () ->
      ignore (Faults.make ~outages:[ { Faults.disk = 0; from_time = 3; until_time = 3 } ] ()));
  rejects "overlapping outages" (fun () ->
      ignore
        (Faults.make
           ~outages:
             [ { Faults.disk = 0; from_time = 0; until_time = 5 };
               { Faults.disk = 0; from_time = 4; until_time = 8 } ]
           ()));
  (* Touching windows and different disks are fine. *)
  ignore
    (Faults.make
       ~outages:
         [ { Faults.disk = 0; from_time = 0; until_time = 5 };
           { Faults.disk = 0; from_time = 5; until_time = 8 };
           { Faults.disk = 1; from_time = 2; until_time = 7 } ]
       ());
  Alcotest.(check bool) "none is none" true (Faults.is_none Faults.none);
  Alcotest.(check bool) "outage plan is not none" false
    (Faults.is_none
       (Faults.make ~outages:[ { Faults.disk = 0; from_time = 0; until_time = 1 } ] ()))

let test_draw_deterministic_and_bounded () =
  let t = Faults.make ~seed:7 ~jitter_prob:0.5 ~max_jitter:3 ~fail_prob:0.4 () in
  let d1 = Faults.draw t ~fetch_time:4 ~disk:0 ~block:5 ~attempt:1 ~start:10 in
  let d2 = Faults.draw t ~fetch_time:4 ~disk:0 ~block:5 ~attempt:1 ~start:10 in
  Alcotest.(check bool) "same identity, same draw" true (d1 = d2);
  let failures = ref 0 and distinct = ref false in
  for start = 0 to 999 do
    let d = Faults.draw t ~fetch_time:4 ~disk:0 ~block:5 ~attempt:1 ~start in
    Alcotest.(check bool) "duration in [F, F + max_jitter]" true
      (d.Faults.duration >= 4 && d.Faults.duration <= 7);
    if d.Faults.failed then incr failures;
    if d <> d1 then distinct := true
  done;
  Alcotest.(check bool) "start time perturbs the draw" true !distinct;
  (* 1000 Bernoulli(0.4) draws: far from 0 and from 1000. *)
  Alcotest.(check bool) "failure rate plausible" true (!failures > 250 && !failures < 550);
  let clean = Faults.draw Faults.none ~fetch_time:4 ~disk:0 ~block:5 ~attempt:1 ~start:10 in
  Alcotest.(check bool) "empty plan never perturbs" true
    (clean.Faults.duration = 4 && not clean.Faults.failed)

let test_outage_windows () =
  let t =
    Faults.make
      ~outages:
        [ { Faults.disk = 0; from_time = 2; until_time = 5 };
          { Faults.disk = 0; from_time = 5; until_time = 6 } ]
      ()
  in
  Alcotest.(check bool) "up before" false (Faults.disk_down t ~disk:0 ~time:1);
  Alcotest.(check bool) "down inside" true (Faults.disk_down t ~disk:0 ~time:2);
  Alcotest.(check bool) "end exclusive" false (Faults.disk_down t ~disk:0 ~time:6);
  Alcotest.(check bool) "other disk unaffected" false (Faults.disk_down t ~disk:1 ~time:3);
  Alcotest.(check int) "next_up chains touching windows" 6 (Faults.next_up t ~disk:0 ~time:3);
  Alcotest.(check int) "next_up is identity when up" 1 (Faults.next_up t ~disk:0 ~time:1)

(* ------------------------------------------------------------------ *)
(* Fault-free equivalence: the tentpole property. *)

let equivalence_cases () =
  List.concat_map
    (fun (fam : Workload.family) ->
       List.concat_map
         (fun seed ->
            let seq = fam.Workload.generate ~seed ~n:60 ~num_blocks:12 in
            let single = Workload.single_instance ~k:6 ~fetch_time:4 seq in
            let par =
              Workload.parallel_instance ~k:6 ~fetch_time:4 ~num_disks:2
                ~layout:(fun ~num_blocks ~num_disks ->
                    Workload.striped_layout ~num_blocks ~num_disks)
                seq
            in
            [ (single, Aggressive.schedule single);
              (single, Conservative.schedule single);
              (par, Parallel_greedy.aggressive_schedule par) ])
         [ 1; 2; 3 ])
    Workload.families
  @
  let t2 = Workload.theorem2_lower_bound ~k:7 ~fetch_time:4 ~phases:3 in
  [ (t2, Aggressive.schedule t2) ]

let test_fault_free_equivalence () =
  List.iter
    (fun (inst, sched) ->
       let reference = ok (Simulate.run ~attribution:true inst sched) in
       let faulty, report =
         ok (Simulate.run_faulty ~attribution:true ~faults:Faults.none inst sched)
       in
       Alcotest.(check bool) "stats byte-identical to Simulate.run" true (reference = faulty);
       Alcotest.(check bool) "report empty" true (report = Faults.empty_report);
       (* The attribution partition must survive the faulty code path. *)
       let charged =
         List.fold_left
           (fun acc (fs : Simulate.fetch_stall) ->
              acc + fs.Simulate.involuntary_stall + fs.Simulate.voluntary_stall)
           0 faulty.Simulate.stall_by_fetch
       in
       Alcotest.(check int) "attribution partitions stall" faulty.Simulate.stall_time charged)
    (equivalence_cases ())

let test_fault_free_resilient_equivalence () =
  List.iter
    (fun (inst, sched) ->
       let reference = ok (Simulate.run inst sched) in
       let o = Resilient.execute ~faults:Faults.none inst sched in
       Alcotest.(check int) "resilient replays the plan faithfully"
         reference.Simulate.stall_time o.Resilient.stats.Simulate.stall_time;
       Alcotest.(check int) "same elapsed" reference.Simulate.elapsed_time
         o.Resilient.stats.Simulate.elapsed_time;
       Alcotest.(check bool) "no replan" true (o.Resilient.replanned_at = None);
       Alcotest.(check int) "no greedy fetches" 0 o.Resilient.greedy_fetches)
    (equivalence_cases ())

(* ------------------------------------------------------------------ *)
(* Degraded-mode semantics, pinned on hand-built scenarios. *)

(* seq 0 1 1, k=2, F=2, cache {0}; one prefetch of block 1 at t=0.
   Clean: fetch spans [0,2), request 1 stalls once at t=1. *)
let tiny () =
  ( Instance.single_disk ~k:2 ~fetch_time:2 ~initial_cache:[ 0 ] [| 0; 1; 1 |],
    [ fetch ~at_cursor:0 ~block:1 ~evict:None () ] )

let test_jitter_slows_fetch () =
  let inst, sched = tiny () in
  let clean = ok (Simulate.run inst sched) in
  Alcotest.(check int) "clean stall" 1 clean.Simulate.stall_time;
  let faults = Faults.make ~seed:3 ~jitter_prob:1.0 ~max_jitter:2 () in
  let s, r = ok (Simulate.run_faulty ~faults inst sched) in
  Alcotest.(check bool) "jitter recorded" true (r.Faults.injected_jitter >= 1);
  Alcotest.(check int) "each jitter unit is one extra stall unit"
    (clean.Simulate.stall_time + r.Faults.injected_jitter) s.Simulate.stall_time;
  Alcotest.(check bool) "extra stall attributed to the fault" true
    (r.Faults.fault_stall >= r.Faults.injected_jitter)

let test_outage_defers_start () =
  let inst, sched = tiny () in
  (* Disk down over [0,3): the fetch waits, starts at t=3, lands at t=5. *)
  let faults = Faults.make ~outages:[ { Faults.disk = 0; from_time = 0; until_time = 3 } ] () in
  let s, r = ok (Simulate.run_faulty ~faults inst sched) in
  Alcotest.(check int) "deferred start counted" 1 r.Faults.deferred_starts;
  Alcotest.(check int) "stall grows by the outage tail" 4 s.Simulate.stall_time;
  Alcotest.(check bool) "stall charged to the fault" true (r.Faults.fault_stall >= 3)

let test_outage_interrupts_in_flight () =
  let inst, sched = tiny () in
  (* Fetch starts at t=0, the disk dies at t=1: the attempt aborts without
     consuming a retry, relaunches at t=4, lands at t=6. *)
  let faults = Faults.make ~outages:[ { Faults.disk = 0; from_time = 1; until_time = 4 } ] () in
  let s, r = ok (Simulate.run_faulty ~faults inst sched) in
  Alcotest.(check int) "interrupt recorded" 1 r.Faults.outage_interrupts;
  Alcotest.(check int) "stall covers the restart" 5 s.Simulate.stall_time;
  Alcotest.(check int) "one logical fetch" 1 s.Simulate.fetches_completed;
  Alcotest.(check int) "busy time excludes the aborted attempt" 3 s.Simulate.disk_busy.(0)

let test_retry_until_abandon () =
  (* Find a seed whose first-attempt draw fails so the retry machinery is
     exercised deterministically; with fail_prob 0.9 the first seed tried
     virtually always works, but scan to be robust. *)
  let inst, sched = tiny () in
  let seed =
    let rec find s =
      if s > 200 then Alcotest.fail "no failing seed found"
      else
        let faults = Faults.make ~seed:s ~fail_prob:0.9 ~retry:{ Faults.backoff = Faults.Immediate; max_attempts = 2 } () in
        match Simulate.run_faulty ~faults inst sched with
        | Ok (_, r) when r.Faults.transient_failures > 0 -> s
        | Ok _ -> find (s + 1)
        | Error _ -> s
    in
    find 1
  in
  let retry = { Faults.backoff = Faults.Fixed 1; max_attempts = 3 } in
  let faults = Faults.make ~seed ~fail_prob:0.9 ~retry () in
  (match Simulate.run_faulty ~faults inst sched with
   | Ok (s, r) ->
     Alcotest.(check bool) "failures recorded" true (r.Faults.transient_failures > 0);
     Alcotest.(check bool) "retried" true (r.Faults.retries > 0);
     Alcotest.(check int) "block still arrived once" 1 s.Simulate.fetches_completed
   | Error _ -> ());
  (* max_attempts 1, forced failure: the fetch is abandoned and the
     requested block becomes unreachable - run_faulty reports the
     deadlock as a typed error, never an exception. *)
  let faults =
    Faults.make ~seed ~fail_prob:0.9 ~retry:{ Faults.backoff = Faults.Immediate; max_attempts = 1 } ()
  in
  match Simulate.run_faulty ~faults inst sched with
  | Ok (_, r) -> Alcotest.(check int) "no abandon means no failure drawn" 0 r.Faults.abandoned
  | Error e ->
    Alcotest.(check bool) "deadlock reason mentions the block" true
      (e.Simulate.at_time >= 0)

let test_event_stream_ordered () =
  let inst, sched = tiny () in
  let faults =
    Faults.make ~seed:5 ~jitter_prob:0.8 ~max_jitter:2 ~fail_prob:0.5
      ~outages:[ { Faults.disk = 0; from_time = 6; until_time = 8 } ]
      ()
  in
  match Simulate.run_faulty ~faults inst sched with
  | Error _ -> ()
  | Ok (_, r) ->
    let times = List.map Faults.event_time r.Faults.events in
    Alcotest.(check bool) "fault events are chronological" true
      (List.for_all2 (fun a b -> a <= b)
         (match times with [] -> [] | _ :: _ -> List.filteri (fun i _ -> i < List.length times - 1) times)
         (match times with [] -> [] | _ :: t -> t))

(* ------------------------------------------------------------------ *)
(* Resilient: completion and recovery under heavy faults. *)

let resilient_cases () =
  List.concat_map
    (fun (fam : Workload.family) ->
       List.map
         (fun seed ->
            let seq = fam.Workload.generate ~seed ~n:50 ~num_blocks:10 in
            let inst = Workload.single_instance ~k:5 ~fetch_time:4 seq in
            (seed, inst, Aggressive.schedule inst))
         [ 1; 2; 3; 4 ])
    Workload.families

let test_resilient_completes_under_faults () =
  List.iter
    (fun (seed, inst, sched) ->
       let faults =
         Faults.make ~seed:(seed * 13) ~jitter_prob:0.3 ~max_jitter:3 ~fail_prob:0.5
           ~retry:{ Faults.backoff = Faults.Fixed 2; max_attempts = 2 }
           ~outages:[ { Faults.disk = 0; from_time = 10; until_time = 20 } ]
           ()
       in
       let clean = ok (Simulate.run inst sched) in
       let o = Resilient.execute ~faults inst sched in
       let n = Instance.length inst in
       Alcotest.(check int) "every request served" (n + o.Resilient.stats.Simulate.stall_time)
         o.Resilient.stats.Simulate.elapsed_time;
       Alcotest.(check bool) "faults never improve stall" true
         (o.Resilient.stats.Simulate.stall_time >= clean.Simulate.stall_time);
       Alcotest.(check bool) "report counters non-negative" true
         (o.Resilient.report.Faults.retries >= 0 && o.Resilient.report.Faults.abandoned >= 0
          && o.Resilient.report.Faults.replans >= 0);
       (* Determinism: the same plan replays identically. *)
       let o2 = Resilient.execute ~faults inst sched in
       Alcotest.(check int) "deterministic stall" o.Resilient.stats.Simulate.stall_time
         o2.Resilient.stats.Simulate.stall_time;
       Alcotest.(check bool) "deterministic report" true
         (o.Resilient.report = o2.Resilient.report))
    (resilient_cases ())

let test_resilient_replans_after_abandon () =
  let inst, sched = tiny () in
  (* Force abandonment (single attempt, high fail prob, seed scanned to a
     failing draw): run_faulty deadlocks, Resilient re-plans and finishes. *)
  let rec find s =
    if s > 500 then Alcotest.fail "no abandoning seed found"
    else
      let faults =
        Faults.make ~seed:s ~fail_prob:0.9
          ~retry:{ Faults.backoff = Faults.Immediate; max_attempts = 1 } ()
      in
      match Simulate.run_faulty ~faults inst sched with
      | Error _ -> (s, faults)
      | Ok _ -> find (s + 1)
  in
  let _, faults = find 1 in
  let o = Resilient.execute ~faults inst sched in
  Alcotest.(check int) "finished all requests" 3
    (o.Resilient.stats.Simulate.elapsed_time - o.Resilient.stats.Simulate.stall_time);
  Alcotest.(check bool) "replanned" true (o.Resilient.replanned_at <> None);
  Alcotest.(check bool) "greedy fetch issued" true (o.Resilient.greedy_fetches >= 1)

let test_resilient_rejects_malformed () =
  let inst, _ = tiny () in
  Alcotest.check_raises "wrong home disk" (Invalid_argument "")
    (fun () ->
       try
         ignore
           (Resilient.execute ~faults:Faults.none inst [ fetch ~at_cursor:0 ~block:1 ~disk:3 ~evict:None () ])
       with Simulate.Invalid_schedule _ -> raise (Invalid_argument ""))

(* ------------------------------------------------------------------ *)
(* Hardened trace parser. *)

let with_trace_file contents f =
  let path = Filename.temp_file "ipc_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
       let oc = open_out_bin path in
       output_string oc contents;
       close_out oc;
       f path)

let parse_fails ?line contents name =
  with_trace_file contents (fun path ->
      match Trace_io.load_instance path with
      | _ -> Alcotest.failf "%s: expected Parse_error" name
      | exception Trace_io.Parse_error { file; line = l; message = _ } ->
        Alcotest.(check string) (name ^ ": file") path file;
        (match line with
         | Some expected -> Alcotest.(check int) (name ^ ": line") expected l
         | None -> ()))

let test_parser_accepts_valid () =
  with_trace_file "# comment\nk 2\nf 2\n\nseq 0 1 0 1  # trailing comment\n" (fun path ->
      let inst = Trace_io.load_instance path in
      Alcotest.(check int) "k" 2 inst.Instance.cache_size;
      Alcotest.(check int) "n" 4 (Instance.length inst))

let test_parser_roundtrip () =
  let inst =
    Workload.parallel_instance ~k:4 ~fetch_time:3 ~num_disks:2
      ~layout:(fun ~num_blocks ~num_disks -> Workload.striped_layout ~num_blocks ~num_disks)
      (Workload.zipf ~seed:9 ~alpha:0.9 ~n:30 ~num_blocks:8)
  in
  let path = Filename.temp_file "ipc_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
       Trace_io.save_instance path inst;
       let back = Trace_io.load_instance path in
       Alcotest.(check bool) "roundtrip preserves the instance" true (inst = back))

let test_parser_rejections () =
  parse_fails ~line:3 "k 2\nf 2\nk 3\nseq 0 1\n" "duplicate k";
  parse_fails ~line:2 "k 2\nf 2\r\nseq 0 1\n" "CRLF line ending";
  parse_fails ~line:1 "k 99999999999999999999999\nf 2\nseq 0 1\n" "integer overflow";
  parse_fails ~line:1 "k 2 7\nf 2\nseq 0 1\n" "trailing garbage after k";
  parse_fails ~line:2 "k 2\nf 0x10\nseq 0 1\n" "hex literal";
  parse_fails ~line:2 "k 2\nf 1_0\nseq 0 1\n" "underscore literal";
  parse_fails ~line:3 "k 2\nf 2\nseq 0 -1x\n" "garbage in seq";
  parse_fails ~line:3 "k 2\nf 2\nbogus 1\n" "unknown key";
  parse_fails ~line:0 "k 2\nseq 0 1\n" "missing f";
  parse_fails ~line:0 "k 2\nf 2\ndisks 2\nseq 0 1\n" "layout required for disks > 1";
  parse_fails ~line:4 "k 2\nf 2\nseq 0 1\nk 3\nseq 0\n" "header key after seq"

(* Multiple [seq] lines concatenate in file order. *)
let test_parser_multi_seq () =
  with_trace_file "k 2\nf 2\nseq 0 1\n# interlude\nseq 0 2\nseq\nseq 1\n" (fun path ->
      let inst = Trace_io.load_instance path in
      Alcotest.(check bool) "concatenated seq" true (inst.Instance.seq = [| 0; 1; 0; 2; 1 |]))

(* The incremental reader: header parsed eagerly, requests streamed one at
   a time, and a malformed token deep in a large file reports the right
   line without the whole file resident. *)
let test_reader_streams () =
  with_trace_file "k 3\nf 2\ninit 0 1 2\nseq 0 1\nseq 2 0\n" (fun path ->
      Trace_io.with_reader path (fun r ->
          let h = Trace_io.header r in
          Alcotest.(check int) "k" 3 h.Trace_io.cache_size;
          Alcotest.(check int) "f" 2 h.Trace_io.fetch_time;
          Alcotest.(check (option (list int))) "init" (Some [ 0; 1; 2 ])
            h.Trace_io.initial_cache;
          let rec drain acc =
            match Trace_io.read_request r with
            | Some v -> drain (v :: acc)
            | None -> List.rev acc
          in
          Alcotest.(check (list int)) "streamed requests" [ 0; 1; 2; 0 ] (drain [])))

let test_reader_deep_malformed_line () =
  (* 40k requests over 4k seq lines; one bad token near the end.  The
     reader must stream up to it and report the exact line. *)
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf "k 4\nf 2\n";
  for line = 0 to 3999 do
    Buffer.add_string buf "seq";
    for i = 0 to 9 do
      if line = 3900 && i = 7 then Buffer.add_string buf " oops"
      else Buffer.add_string buf (Printf.sprintf " %d" ((line + i) mod 16))
    done;
    Buffer.add_char buf '\n'
  done;
  with_trace_file (Buffer.contents buf) (fun path ->
      Trace_io.with_reader path (fun r ->
          let rec drain n =
            match Trace_io.read_request r with
            | Some _ -> drain (n + 1)
            | None -> n
          in
          match drain 0 with
          | n -> Alcotest.failf "expected Parse_error, drained %d requests" n
          | exception Trace_io.Parse_error { line; message; _ } ->
            (* Bad token on the 3901st seq line; header is 2 lines. *)
            Alcotest.(check int) "error line" (2 + 3900 + 1) line;
            Alcotest.(check bool) "mentions token" true
              (let needle = "oops" in
               let lh = String.length message and ln = String.length needle in
               let rec loop i = i + ln <= lh && (String.sub message i ln = needle || loop (i + 1)) in
               loop 0)))

(* save_instance chunks long sequences over many lines; the roundtrip
   must still be exact. *)
let test_parser_chunked_roundtrip () =
  let seq = Array.init 5000 (fun i -> (i * 7) mod 97) in
  let inst = Instance.single_disk ~k:8 ~fetch_time:3 ~initial_cache:[ 0; 7; 14; 21 ] seq in
  let path = Filename.temp_file "ipc_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
       Trace_io.save_instance path inst;
       let ic = open_in path in
       let lines = ref 0 in
       (try
          while true do
            ignore (input_line ic);
            incr lines
          done
        with End_of_file -> close_in ic);
       Alcotest.(check bool) "seq split over multiple lines" true (!lines > 5);
       let back = Trace_io.load_instance path in
       Alcotest.(check bool) "chunked roundtrip" true (inst = back))

(* ------------------------------------------------------------------ *)
(* Typed invalid-schedule channel. *)

let test_invalid_schedule_exception () =
  let inst = Instance.single_disk ~k:2 ~fetch_time:2 ~initial_cache:[ 0 ] [| 0; 1 |] in
  (* Fetching a resident block is rejected by the simulator. *)
  let bogus = [ fetch ~at_cursor:0 ~block:0 ~evict:None () ] in
  (match Driver.validate ~name:"Bogus" inst bogus with
   | _ -> Alcotest.fail "expected Invalid_schedule"
   | exception Driver.Invalid_schedule { algorithm; at_time; reason } ->
     Alcotest.(check string) "algorithm tag" "Bogus" algorithm;
     Alcotest.(check bool) "time and reason populated" true (at_time >= 0 && reason <> ""));
  (match Driver.validate ~name:"Bogus" inst bogus with
   | _ -> ()
   | exception exn ->
     let rendered = Printexc.to_string exn in
     Alcotest.(check bool) "registered printer renders the message" true
       (let needle = "Bogus produced an invalid schedule" in
        let lh = String.length rendered and ln = String.length needle in
        let rec loop i = i + ln <= lh && (String.sub rendered i ln = needle || loop (i + 1)) in
        loop 0));
  (* The valid path returns the stats unchanged. *)
  let good = [ fetch ~at_cursor:0 ~block:1 ~evict:None () ] in
  let s = Driver.validate ~name:"Good" inst good in
  Alcotest.(check int) "valid schedule passes through" 1 s.Simulate.stall_time

(* ------------------------------------------------------------------ *)
(* Chrome-trace fault lane. *)

let test_trace_fault_lane () =
  let inst, sched = tiny () in
  let faults = Faults.make ~outages:[ { Faults.disk = 0; from_time = 1; until_time = 4 } ] () in
  let s, r = ok (Simulate.run_faulty ~record_events:true ~faults inst sched) in
  let json = Sim_trace.to_string ~faults:r inst s in
  let contains needle =
    let lh = String.length json and ln = String.length needle in
    let rec loop i = i + ln <= lh && (String.sub json i ln = needle || loop (i + 1)) in
    loop 0
  in
  Alcotest.(check bool) "fault lane present" true (contains "\"faults\"");
  Alcotest.(check bool) "outage window exported" true (contains "outage d0");
  Alcotest.(check bool) "interrupt instant exported" true (contains "interrupted");
  (* Without a report the export is unchanged: no fault lane. *)
  let plain = Sim_trace.to_string inst s in
  let contains_plain needle =
    let lh = String.length plain and ln = String.length needle in
    let rec loop i = i + ln <= lh && (String.sub plain i ln = needle || loop (i + 1)) in
    loop 0
  in
  Alcotest.(check bool) "no fault lane by default" false (contains_plain "\"faults\"")

(* ------------------------------------------------------------------ *)
(* Randomized sweep: run_faulty invariants under arbitrary plans. *)

let prop_faulty_invariants =
  QCheck2.Test.make ~count:150 ~name:"run_faulty invariants under random plans"
    ~print:(fun (seed, jitter_pct, fail_pct, max_attempts) ->
      Printf.sprintf "seed=%d jitter=%d%% fail=%d%% max_attempts=%d" seed jitter_pct fail_pct
        max_attempts)
    QCheck2.Gen.(tup4 (int_range 0 5000) (int_range 0 100) (int_range 0 100) (int_range 1 3))
    (fun (seed, jitter_pct, fail_pct, max_attempts) ->
       let fail_prob = float_of_int (min fail_pct 99) /. 100.0 in
       let jitter_prob = float_of_int jitter_pct /. 100.0 in
       let faults =
         Faults.make ~seed ~jitter_prob ~max_jitter:(if jitter_prob > 0.0 then 3 else 0)
           ~fail_prob
           ~retry:{ Faults.backoff = Faults.Fixed 1; max_attempts }
           ~outages:[ { Faults.disk = 0; from_time = 7 + (seed mod 5); until_time = 12 + (seed mod 5) } ]
           ()
       in
       let seq = Workload.zipf ~seed:(seed + 1) ~alpha:0.9 ~n:40 ~num_blocks:10 in
       let inst = Workload.single_instance ~k:5 ~fetch_time:4 seq in
       let sched = Aggressive.schedule inst in
       (match Simulate.run_faulty ~faults inst sched with
        | Error _ -> ()  (* deadlock after abandonment is a legal outcome *)
        | Ok (s, r) ->
          assert (s.Simulate.elapsed_time = Instance.length inst + s.Simulate.stall_time);
          assert (s.Simulate.fetches_completed <= s.Simulate.fetches_started);
          assert (r.Faults.fault_stall <= s.Simulate.stall_time);
          assert (r.Faults.retries <= r.Faults.transient_failures + r.Faults.outage_interrupts);
          let charged =
            List.fold_left
              (fun acc (fs : Simulate.fetch_stall) ->
                 acc + fs.Simulate.involuntary_stall + fs.Simulate.voluntary_stall)
              0 s.Simulate.stall_by_fetch
          in
          assert (charged = s.Simulate.stall_time));
       (* Resilient must always complete on the same plan. *)
       let o = Resilient.execute ~faults inst sched in
       o.Resilient.stats.Simulate.elapsed_time
       = Instance.length inst + o.Resilient.stats.Simulate.stall_time)

let () =
  Alcotest.run "faults"
    [ ("plan",
       [ Alcotest.test_case "backoff" `Quick test_backoff;
         Alcotest.test_case "validation" `Quick test_make_validation;
         Alcotest.test_case "deterministic draws" `Quick test_draw_deterministic_and_bounded;
         Alcotest.test_case "outage windows" `Quick test_outage_windows ]);
      ("fault-free equivalence",
       [ Alcotest.test_case "run_faulty = run on all families" `Quick test_fault_free_equivalence;
         Alcotest.test_case "resilient = run on all families" `Quick
           test_fault_free_resilient_equivalence ]);
      ("degraded mode",
       [ Alcotest.test_case "jitter slows fetch" `Quick test_jitter_slows_fetch;
         Alcotest.test_case "outage defers start" `Quick test_outage_defers_start;
         Alcotest.test_case "outage interrupts in-flight" `Quick test_outage_interrupts_in_flight;
         Alcotest.test_case "retry until abandon" `Quick test_retry_until_abandon;
         Alcotest.test_case "event stream ordered" `Quick test_event_stream_ordered ]);
      ("resilient",
       [ Alcotest.test_case "completes under heavy faults" `Quick
           test_resilient_completes_under_faults;
         Alcotest.test_case "replans after abandonment" `Quick test_resilient_replans_after_abandon;
         Alcotest.test_case "rejects malformed schedules" `Quick test_resilient_rejects_malformed ]);
      ("trace parser",
       [ Alcotest.test_case "accepts valid" `Quick test_parser_accepts_valid;
         Alcotest.test_case "roundtrip" `Quick test_parser_roundtrip;
         Alcotest.test_case "rejections with line numbers" `Quick test_parser_rejections;
         Alcotest.test_case "multi-line seq" `Quick test_parser_multi_seq;
         Alcotest.test_case "incremental reader" `Quick test_reader_streams;
         Alcotest.test_case "deep malformed line" `Quick test_reader_deep_malformed_line;
         Alcotest.test_case "chunked roundtrip" `Quick test_parser_chunked_roundtrip ]);
      ("typed errors",
       [ Alcotest.test_case "Invalid_schedule" `Quick test_invalid_schedule_exception ]);
      ("chrome trace", [ Alcotest.test_case "fault lane" `Quick test_trace_fault_lane ]);
      ("properties", [ QCheck_alcotest.to_alcotest prop_faulty_invariants ]) ]
