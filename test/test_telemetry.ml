(* Telemetry subsystem tests: registry semantics (zero-cost when
   disabled), the Tjson printer/parser, byte-stable Chrome trace export,
   and the exactness of the simulator's stall attribution. *)

let fresh () =
  Telemetry.clear ();
  Telemetry.set_enabled false

(* ------------------------------------------------------------------ *)
(* Registry. *)

let test_counter_disabled () =
  fresh ();
  let c = Telemetry.counter "t.counter" in
  Telemetry.incr c;
  Telemetry.add c 41;
  match Telemetry.find "t.counter" with
  | Some (Telemetry.Counter n) -> Alcotest.(check int) "mutations are no-ops while disabled" 0 n
  | _ -> Alcotest.fail "counter not registered"

let test_counter_enabled () =
  fresh ();
  Telemetry.set_enabled true;
  let c = Telemetry.counter "t.counter" in
  Telemetry.incr c;
  Telemetry.add c 41;
  (match Telemetry.find "t.counter" with
   | Some (Telemetry.Counter n) -> Alcotest.(check int) "count" 42 n
   | _ -> Alcotest.fail "counter not found");
  (* find-or-create returns the same underlying cell *)
  Telemetry.incr (Telemetry.counter "t.counter");
  (match Telemetry.find "t.counter" with
   | Some (Telemetry.Counter n) -> Alcotest.(check int) "shared cell" 43 n
   | _ -> Alcotest.fail "counter not found")

let test_reset_and_clear () =
  fresh ();
  Telemetry.set_enabled true;
  let c = Telemetry.counter "t.c" in
  let g = Telemetry.gauge "t.g" in
  let h = Telemetry.histogram "t.h" in
  Telemetry.add c 7;
  Telemetry.set g 2.5;
  Telemetry.observe h 1.0;
  Telemetry.reset ();
  (match Telemetry.find "t.c" with
   | Some (Telemetry.Counter n) -> Alcotest.(check int) "counter zeroed" 0 n
   | _ -> Alcotest.fail "counter dropped by reset");
  (match Telemetry.find "t.h" with
   | Some (Telemetry.Histogram s) -> Alcotest.(check int) "histogram emptied" 0 s.Stats.count
   | _ -> Alcotest.fail "histogram dropped by reset");
  Telemetry.clear ();
  Alcotest.(check bool) "clear drops registrations" true (Telemetry.find "t.c" = None)

let test_kind_mismatch () =
  fresh ();
  let (_ : Telemetry.counter) = Telemetry.counter "t.kind" in
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument "Telemetry: metric t.kind already registered with another kind")
    (fun () -> ignore (Telemetry.gauge "t.kind"))

let test_histogram_summary () =
  fresh ();
  Telemetry.set_enabled true;
  let h = Telemetry.histogram "t.hist" in
  List.iter (Telemetry.observe_int h) [ 1; 2; 3; 4; 5 ];
  match Telemetry.find "t.hist" with
  | Some (Telemetry.Histogram s) ->
    Alcotest.(check int) "count" 5 s.Stats.count;
    Alcotest.(check (float 1e-9)) "mean" 3.0 s.Stats.mean;
    Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.minimum;
    Alcotest.(check (float 1e-9)) "max" 5.0 s.Stats.maximum
  | _ -> Alcotest.fail "histogram not found"

let test_snapshot_sorted () =
  fresh ();
  Telemetry.set_enabled true;
  ignore (Telemetry.counter "z.last");
  ignore (Telemetry.counter "a.first");
  ignore (Telemetry.gauge "m.middle");
  let names = List.map fst (Telemetry.snapshot ()) in
  Alcotest.(check (list string)) "sorted by name" [ "a.first"; "m.middle"; "z.last" ] names

let test_span () =
  fresh ();
  Telemetry.set_enabled true;
  let v = Telemetry.with_span "t.span" (fun () -> 42) in
  Alcotest.(check int) "with_span passes the result through" 42 v;
  match Telemetry.find "t.span" with
  | Some (Telemetry.Histogram s) ->
    Alcotest.(check int) "one sample" 1 s.Stats.count;
    Alcotest.(check bool) "non-negative duration" true (s.Stats.minimum >= 0.0)
  | _ -> Alcotest.fail "span histogram not found"

(* ------------------------------------------------------------------ *)
(* Tjson. *)

let sample_json =
  Tjson.Obj
    [ ("s", Tjson.String "a\"b\n");
      ("i", Tjson.Int (-3));
      ("f", Tjson.Float 1.5);
      ("whole", Tjson.Float 2.0);
      ("t", Tjson.Bool true);
      ("nul", Tjson.Null);
      ("l", Tjson.List [ Tjson.Int 1; Tjson.Float 0.25 ]) ]

let test_tjson_print () =
  Alcotest.(check string) "deterministic printing"
    "{\"s\":\"a\\\"b\\n\",\"i\":-3,\"f\":1.5,\"whole\":2,\"t\":true,\"nul\":null,\"l\":[1,0.25]}"
    (Tjson.to_string sample_json);
  Alcotest.(check string) "nan prints as null" "null" (Tjson.to_string (Tjson.Float Float.nan))

let test_tjson_roundtrip () =
  let s = Tjson.to_string sample_json in
  match Tjson.of_string s with
  | Error e -> Alcotest.fail ("parse failed: " ^ e)
  | Ok v ->
    Alcotest.(check string) "print . parse . print is stable" s (Tjson.to_string v);
    (match Tjson.member "i" v with
     | Some (Tjson.Int n) -> Alcotest.(check int) "member" (-3) n
     | _ -> Alcotest.fail "member i missing")

let test_tjson_errors () =
  let bad = [ "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ] in
  List.iter
    (fun s ->
       match Tjson.of_string s with
       | Ok _ -> Alcotest.fail (Printf.sprintf "accepted malformed input %S" s)
       | Error _ -> ())
    bad

let test_metrics_jsonl () =
  fresh ();
  Telemetry.set_enabled true;
  Telemetry.add (Telemetry.counter "j.count") 3;
  Telemetry.observe (Telemetry.histogram "j.hist") 2.0;
  let lines = String.split_on_char '\n' (String.trim (Metrics_export.to_jsonl (Telemetry.snapshot ()))) in
  Alcotest.(check int) "one line per metric" 2 (List.length lines);
  List.iter
    (fun line ->
       match Tjson.of_string line with
       | Error e -> Alcotest.fail (Printf.sprintf "line %S does not parse: %s" line e)
       | Ok v ->
         (match Tjson.member "metric" v with
          | Some (Tjson.String _) -> ()
          | _ -> Alcotest.fail "metric field missing"))
    lines

(* ------------------------------------------------------------------ *)
(* Chrome trace export: byte-stable golden output for a fixed tiny
   instance whose schedule exercises both stall kinds. *)

let golden_instance =
  Instance.single_disk ~k:2 ~fetch_time:2 ~initial_cache:[ 0; 1 ] [| 0; 1; 2; 0; 2 |]

let golden_schedule =
  (* Eligible at cursor 2 (t=2), delayed one unit: the unit [2,3) is a
     voluntary-delay stall, the in-flight units [3,5) are involuntary. *)
  [ Fetch_op.make ~at_cursor:2 ~delay:1 ~block:2 ~evict:(Some 1) () ]

let golden_trace = "{\"traceEvents\":[{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":0,\"args\":{\"name\":\"ipc simulation\"}},{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":0,\"args\":{\"name\":\"cpu\"}},{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":0,\"args\":{\"sort_index\":0}},{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":1,\"args\":{\"name\":\"disk 0\"}},{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":1,\"args\":{\"sort_index\":1}},{\"name\":\"serve r1-r2\",\"ph\":\"X\",\"ts\":0,\"pid\":1,\"tid\":0,\"dur\":2000,\"cat\":\"cpu\",\"args\":{\"first_request\":1,\"requests\":2}},{\"name\":\"serve r3-r5\",\"ph\":\"X\",\"ts\":5000,\"pid\":1,\"tid\":0,\"dur\":3000,\"cat\":\"cpu\",\"args\":{\"first_request\":3,\"requests\":3}},{\"name\":\"stall\",\"ph\":\"i\",\"ts\":2000,\"pid\":1,\"tid\":0,\"s\":\"t\",\"cat\":\"stall\"},{\"name\":\"fetch b2\",\"ph\":\"X\",\"ts\":3000,\"pid\":1,\"tid\":1,\"dur\":2000,\"cat\":\"fetch\",\"args\":{\"block\":2,\"disk\":0,\"at_cursor\":2,\"delay\":1,\"evict\":1,\"fetch_time\":2,\"stall_involuntary\":2,\"stall_voluntary\":1}},{\"name\":\"stall\",\"ph\":\"i\",\"ts\":3000,\"pid\":1,\"tid\":0,\"s\":\"t\",\"cat\":\"stall\"},{\"name\":\"stall\",\"ph\":\"i\",\"ts\":4000,\"pid\":1,\"tid\":0,\"s\":\"t\",\"cat\":\"stall\"},{\"name\":\"cache occupancy\",\"ph\":\"C\",\"ts\":0,\"pid\":1,\"tid\":0,\"args\":{\"blocks\":2}}],\"displayTimeUnit\":\"ms\"}"

let test_golden_trace () =
  fresh ();
  match Simulate.run ~record_events:true ~attribution:true golden_instance golden_schedule with
  | Error e -> Alcotest.fail (Printf.sprintf "golden schedule rejected at t=%d: %s" e.Simulate.at_time e.Simulate.reason)
  | Ok stats ->
    Alcotest.(check int) "stall" 3 stats.Simulate.stall_time;
    let actual = Sim_trace.to_string golden_instance stats in
    if actual <> golden_trace then begin
      let path = Filename.temp_file "ipc_trace_actual" ".json" in
      let oc = open_out path in
      output_string oc actual;
      close_out oc;
      Alcotest.fail (Printf.sprintf "trace differs from golden (actual written to %s)" path)
    end;
    (* The golden string is also valid JSON as far as our parser goes. *)
    (match Tjson.of_string actual with
     | Ok _ -> ()
     | Error e -> Alcotest.fail ("trace does not parse: " ^ e))

let test_golden_attribution () =
  fresh ();
  match Simulate.run ~record_events:true ~attribution:true golden_instance golden_schedule with
  | Error _ -> Alcotest.fail "golden schedule rejected"
  | Ok stats ->
    (match stats.Simulate.stall_by_fetch with
     | [ fs ] ->
       Alcotest.(check int) "involuntary" 2 fs.Simulate.involuntary_stall;
       Alcotest.(check int) "voluntary-delay" 1 fs.Simulate.voluntary_stall
     | l -> Alcotest.fail (Printf.sprintf "expected 1 attributed fetch, got %d" (List.length l)))

(* ------------------------------------------------------------------ *)
(* Stall attribution sums exactly to the simulator's stall time, across
   every workload family, several seeds, and all the single-disk
   algorithms. *)

let test_attribution_sums () =
  fresh ();
  List.iter
    (fun (fam : Workload.family) ->
       List.iter
         (fun seed ->
            let inst =
              Workload.single_instance ~k:6 ~fetch_time:5
                (fam.Workload.generate ~seed ~n:80 ~num_blocks:10)
            in
            List.iter
              (fun (alg : Measure.algorithm) ->
                 let sched = alg.Measure.schedule inst in
                 match Simulate.run ~attribution:true inst sched with
                 | Error e ->
                   Alcotest.fail
                     (Printf.sprintf "%s/%s/%d rejected: %s" fam.Workload.name alg.Measure.name seed
                        e.Simulate.reason)
                 | Ok stats ->
                   let attributed =
                     List.fold_left
                       (fun a fs -> a + fs.Simulate.involuntary_stall + fs.Simulate.voluntary_stall)
                       0 stats.Simulate.stall_by_fetch
                   in
                   Alcotest.(check int)
                     (Printf.sprintf "%s/%s/seed=%d attribution total" fam.Workload.name
                        alg.Measure.name seed)
                     stats.Simulate.stall_time attributed;
                   List.iter
                     (fun fs ->
                        Alcotest.(check bool) "charges are non-negative" true
                          (fs.Simulate.involuntary_stall >= 0 && fs.Simulate.voluntary_stall >= 0))
                     stats.Simulate.stall_by_fetch;
                   Alcotest.(check int) "one busy track per disk" inst.Instance.num_disks
                     (Array.length stats.Simulate.disk_busy);
                   Array.iter
                     (fun busy ->
                        Alcotest.(check bool) "disk busy within elapsed" true
                          (busy >= 0 && busy <= stats.Simulate.elapsed_time))
                     stats.Simulate.disk_busy)
              Measure.single_disk_algorithms)
         [ 1; 2 ])
    Workload.families

(* ------------------------------------------------------------------ *)
(* Streaming histograms: exact scalar fields, and the quantile-error
   contract against the exact order statistics. *)

let test_streaming_exact_fields () =
  let h = Streaming_hist.create () in
  let xs = [ 0.5; 3.0; 100.25; 7.0; 3.0 ] in
  List.iter (Streaming_hist.observe h) xs;
  Alcotest.(check int) "count" 5 (Streaming_hist.count h);
  Alcotest.(check (float 1e-9)) "sum is exact" 113.75 (Streaming_hist.sum h);
  (* Extreme quantiles land in the min/max buckets: within the relative
     error bound of the exact extremes, and never outside [min, max]. *)
  let q0 = Streaming_hist.quantile h 0.0 and q1 = Streaming_hist.quantile h 1.0 in
  let eps = Streaming_hist.relative_error in
  Alcotest.(check bool) "q0 within eps of min" true
    (q0 >= 0.5 && q0 <= 0.5 *. (1.0 +. eps));
  Alcotest.(check bool) "q1 within eps of max" true
    (q1 <= 100.25 && q1 >= 100.25 *. (1.0 -. eps));
  let s = Streaming_hist.summary h in
  Alcotest.(check (float 1e-9)) "summary mean is exact" 22.75 s.Stats.mean;
  Alcotest.(check bool) "bounded bucket list" true
    (List.length (Streaming_hist.buckets h) <= Streaming_hist.num_buckets);
  Streaming_hist.reset h;
  Alcotest.(check int) "reset empties" 0 (Streaming_hist.count h);
  Alcotest.(check (float 1e-9)) "empty quantile is 0" 0.0 (Streaming_hist.quantile h 0.5)

(* Samples inside the bucketed range [2^-20, 2^44). *)
let gen_hist_sample =
  QCheck2.Gen.(list_size (int_range 1 400)
                 (map (fun x -> (float_of_int x /. 16.0) +. 0.001) (int_range 0 2_000_000)))

(* The rank-bracket form of the quantile guarantee: within relative
   slack eps (the documented ~2.2% bucket error, rounded up to 2.5%),
   no more than q*n samples sit strictly below the answer and at least
   q*n sit at or below it - i.e. the answer is a legitimate q-quantile
   once values are blurred by one bucket width.  One rank of slack
   absorbs the nearest-rank rounding at the bracket edges. *)
let prop_streaming_quantile =
  QCheck2.Test.make ~count:300 ~name:"streaming quantile stays inside the 2.5% rank bracket"
    QCheck2.Gen.(pair gen_hist_sample (float_bound_inclusive 1.0))
    (fun (xs, q) ->
       let h = Streaming_hist.create () in
       List.iter (Streaming_hist.observe h) xs;
       let approx = Streaming_hist.quantile h q in
       let eps = 0.025 in
       let n = float_of_int (List.length xs) in
       let target = q *. n in
       let below = List.length (List.filter (fun x -> x < approx *. (1.0 -. eps)) xs) in
       let at_or_below = List.length (List.filter (fun x -> x <= approx *. (1.0 +. eps)) xs) in
       let mn = List.fold_left min infinity xs and mx = List.fold_left max neg_infinity xs in
       float_of_int below <= target +. 1.0
       && float_of_int at_or_below >= target -. 1.0
       && approx >= mn -. 1e-9
       && approx <= mx +. 1e-9)

let prop_streaming_count_sum_exact =
  QCheck2.Test.make ~count:200 ~name:"streaming count and sum stay exact"
    gen_hist_sample
    (fun xs ->
       let h = Streaming_hist.create () in
       List.iter (Streaming_hist.observe h) xs;
       Streaming_hist.count h = List.length xs
       && Float.abs (Streaming_hist.sum h -. List.fold_left ( +. ) 0.0 xs)
          <= 1e-6 *. (1.0 +. Float.abs (Streaming_hist.sum h)))

(* ------------------------------------------------------------------ *)
(* Decision-provenance event log: ring bound, deterministic sampling,
   byte-identical exports from a fixed seed, and the stall-interval
   accounting invariant against both the driver counter and the
   reference executor. *)

let fresh_log () =
  Event_log.set_enabled false;
  Event_log.set_capacity Event_log.default_capacity;
  Event_log.set_sample_every 1;
  Event_log.clear ()

let test_event_log_disabled () =
  fresh_log ();
  Event_log.record (Event_log.Note { time = 0; component = "t"; message = "x" });
  Event_log.note ~component:"t" "formatted %d" 7;
  Alcotest.(check int) "nothing seen while disabled" 0 (Event_log.seen ());
  Alcotest.(check int) "nothing recorded while disabled" 0 (Event_log.recorded ());
  Alcotest.(check int) "contents empty" 0 (List.length (Event_log.contents ()))

let test_event_log_ring_bound () =
  fresh_log ();
  Event_log.set_enabled true;
  Event_log.set_capacity 16;
  for i = 1 to 100 do
    Event_log.note ~time:i ~component:"t" "m%d" i
  done;
  Alcotest.(check int) "seen" 100 (Event_log.seen ());
  Alcotest.(check int) "recorded" 100 (Event_log.recorded ());
  Alcotest.(check int) "dropped to wraparound" 84 (Event_log.dropped ());
  let evs = Event_log.contents () in
  Alcotest.(check int) "ring keeps exactly its capacity" 16 (List.length evs);
  let times =
    List.filter_map (function Event_log.Note { time; _ } -> Some time | _ -> None) evs
  in
  Alcotest.(check (list int)) "newest events survive, oldest first"
    [ 85; 86; 87; 88; 89; 90; 91; 92; 93; 94; 95; 96; 97; 98; 99; 100 ] times;
  fresh_log ()

let test_event_log_sampling () =
  fresh_log ();
  Event_log.set_enabled true;
  Event_log.set_sample_every 3;
  for i = 1 to 10 do
    Event_log.note ~time:i ~component:"t" "m%d" i
  done;
  Alcotest.(check int) "all offered events counted" 10 (Event_log.seen ());
  Alcotest.(check int) "kept 1-in-3" 4 (Event_log.recorded ());
  let times =
    List.filter_map
      (function Event_log.Note { time; _ } -> Some time | _ -> None)
      (Event_log.contents ())
  in
  Alcotest.(check (list int)) "counter thinning is deterministic" [ 1; 4; 7; 10 ] times;
  fresh_log ()

let zipf_instance ~seed ~n =
  Workload.single_instance ~k:4 ~fetch_time:7
    (Workload.zipf ~seed ~alpha:0.9 ~n ~num_blocks:(max 8 (n / 12)))

let test_event_log_deterministic () =
  fresh ();
  fresh_log ();
  let inst = zipf_instance ~seed:11 ~n:300 in
  let capture () =
    Event_log.clear ();
    Event_log.set_enabled true;
    let (_ : Fetch_op.schedule) = Aggressive.schedule inst in
    let out = Event_log.to_jsonl (Event_log.contents ()) in
    Event_log.set_enabled false;
    out
  in
  let a = capture () in
  let b = capture () in
  Alcotest.(check bool) "the run produced events" true (String.length a > 0);
  Alcotest.(check string) "same seed exports byte-identically" a b;
  List.iter
    (fun line ->
       match Tjson.of_string line with
       | Error e -> Alcotest.fail (Printf.sprintf "line %S does not parse: %s" line e)
       | Ok v ->
         (match Tjson.member "event" v with
          | Some (Tjson.String _) -> ()
          | _ -> Alcotest.fail "event kind field missing"))
    (String.split_on_char '\n' (String.trim a));
  fresh_log ()

(* The driver's stall-interval events must partition its stall time: the
   interval lengths sum to the driver.stall_units counter, which in turn
   must agree with the reference executor's stall_time for the same
   schedule.  The event log is disabled before the executor replay so
   executor-side Stall_interval events cannot leak into the sum. *)
let test_stall_intervals_sum () =
  fresh ();
  fresh_log ();
  Telemetry.set_enabled true;
  Event_log.set_enabled true;
  let inst = zipf_instance ~seed:5 ~n:400 in
  let sched = Aggressive.schedule inst in
  let interval_sum =
    List.fold_left
      (fun acc -> function
         | Event_log.Stall_interval { from_time; until_time; _ } -> acc + (until_time - from_time)
         | _ -> acc)
      0 (Event_log.contents ())
  in
  Event_log.set_enabled false;
  Telemetry.set_enabled false;
  let counter =
    match Telemetry.find "driver.stall_units" with
    | Some (Telemetry.Counter n) -> n
    | _ -> Alcotest.fail "driver.stall_units not registered"
  in
  Alcotest.(check bool) "the workload actually stalls" true (counter > 0);
  Alcotest.(check int) "intervals sum to the driver's stall units" counter interval_sum;
  (match Simulate.run inst sched with
   | Error e ->
     Alcotest.fail (Printf.sprintf "schedule rejected at t=%d: %s" e.Simulate.at_time e.Simulate.reason)
   | Ok stats ->
     Alcotest.(check int) "fast driver agrees with the executor" stats.Simulate.stall_time counter);
  fresh_log ();
  fresh ()

(* Disabled telemetry leaves the registry untouched even when the
   instrumented paths run. *)
let test_disabled_is_silent () =
  fresh ();
  let inst =
    Workload.single_instance ~k:6 ~fetch_time:4 (Workload.zipf ~seed:1 ~alpha:0.9 ~n:50 ~num_blocks:10)
  in
  (match Simulate.run inst (Aggressive.schedule inst) with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "schedule rejected");
  match Telemetry.find "simulate.runs" with
  | Some (Telemetry.Counter n) -> Alcotest.(check int) "no counts while disabled" 0 n
  | None -> ()  (* cleared registry: also fine *)
  | Some _ -> Alcotest.fail "unexpected kind"

let () =
  Alcotest.run "telemetry"
    [ ("registry",
       [ Alcotest.test_case "counter disabled" `Quick test_counter_disabled;
         Alcotest.test_case "counter enabled" `Quick test_counter_enabled;
         Alcotest.test_case "reset and clear" `Quick test_reset_and_clear;
         Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
         Alcotest.test_case "histogram summary" `Quick test_histogram_summary;
         Alcotest.test_case "snapshot sorted" `Quick test_snapshot_sorted;
         Alcotest.test_case "span" `Quick test_span ]);
      ("tjson",
       [ Alcotest.test_case "printing" `Quick test_tjson_print;
         Alcotest.test_case "roundtrip" `Quick test_tjson_roundtrip;
         Alcotest.test_case "errors" `Quick test_tjson_errors;
         Alcotest.test_case "metrics jsonl" `Quick test_metrics_jsonl ]);
      ("trace",
       [ Alcotest.test_case "golden chrome trace" `Quick test_golden_trace;
         Alcotest.test_case "golden attribution" `Quick test_golden_attribution ]);
      ("streaming-hist",
       Alcotest.test_case "exact fields" `Quick test_streaming_exact_fields
       :: List.map QCheck_alcotest.to_alcotest
            [ prop_streaming_quantile; prop_streaming_count_sum_exact ]);
      ("event-log",
       [ Alcotest.test_case "disabled is silent" `Quick test_event_log_disabled;
         Alcotest.test_case "ring bound" `Quick test_event_log_ring_bound;
         Alcotest.test_case "deterministic sampling" `Quick test_event_log_sampling;
         Alcotest.test_case "byte-identical export" `Quick test_event_log_deterministic;
         Alcotest.test_case "stall intervals partition stall time" `Quick test_stall_intervals_sum ]);
      ("attribution",
       [ Alcotest.test_case "sums to stall time" `Quick test_attribution_sums;
         Alcotest.test_case "disabled is silent" `Quick test_disabled_is_silent ]) ]
