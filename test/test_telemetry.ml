(* Telemetry subsystem tests: registry semantics (zero-cost when
   disabled), the Tjson printer/parser, byte-stable Chrome trace export,
   and the exactness of the simulator's stall attribution. *)

let fresh () =
  Telemetry.clear ();
  Telemetry.set_enabled false

(* ------------------------------------------------------------------ *)
(* Registry. *)

let test_counter_disabled () =
  fresh ();
  let c = Telemetry.counter "t.counter" in
  Telemetry.incr c;
  Telemetry.add c 41;
  match Telemetry.find "t.counter" with
  | Some (Telemetry.Counter n) -> Alcotest.(check int) "mutations are no-ops while disabled" 0 n
  | _ -> Alcotest.fail "counter not registered"

let test_counter_enabled () =
  fresh ();
  Telemetry.set_enabled true;
  let c = Telemetry.counter "t.counter" in
  Telemetry.incr c;
  Telemetry.add c 41;
  (match Telemetry.find "t.counter" with
   | Some (Telemetry.Counter n) -> Alcotest.(check int) "count" 42 n
   | _ -> Alcotest.fail "counter not found");
  (* find-or-create returns the same underlying cell *)
  Telemetry.incr (Telemetry.counter "t.counter");
  (match Telemetry.find "t.counter" with
   | Some (Telemetry.Counter n) -> Alcotest.(check int) "shared cell" 43 n
   | _ -> Alcotest.fail "counter not found")

let test_reset_and_clear () =
  fresh ();
  Telemetry.set_enabled true;
  let c = Telemetry.counter "t.c" in
  let g = Telemetry.gauge "t.g" in
  let h = Telemetry.histogram "t.h" in
  Telemetry.add c 7;
  Telemetry.set g 2.5;
  Telemetry.observe h 1.0;
  Telemetry.reset ();
  (match Telemetry.find "t.c" with
   | Some (Telemetry.Counter n) -> Alcotest.(check int) "counter zeroed" 0 n
   | _ -> Alcotest.fail "counter dropped by reset");
  (match Telemetry.find "t.h" with
   | Some (Telemetry.Histogram s) -> Alcotest.(check int) "histogram emptied" 0 s.Stats.count
   | _ -> Alcotest.fail "histogram dropped by reset");
  Telemetry.clear ();
  Alcotest.(check bool) "clear drops registrations" true (Telemetry.find "t.c" = None)

let test_kind_mismatch () =
  fresh ();
  let (_ : Telemetry.counter) = Telemetry.counter "t.kind" in
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument "Telemetry: metric t.kind already registered with another kind")
    (fun () -> ignore (Telemetry.gauge "t.kind"))

let test_histogram_summary () =
  fresh ();
  Telemetry.set_enabled true;
  let h = Telemetry.histogram "t.hist" in
  List.iter (Telemetry.observe_int h) [ 1; 2; 3; 4; 5 ];
  match Telemetry.find "t.hist" with
  | Some (Telemetry.Histogram s) ->
    Alcotest.(check int) "count" 5 s.Stats.count;
    Alcotest.(check (float 1e-9)) "mean" 3.0 s.Stats.mean;
    Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.minimum;
    Alcotest.(check (float 1e-9)) "max" 5.0 s.Stats.maximum
  | _ -> Alcotest.fail "histogram not found"

let test_snapshot_sorted () =
  fresh ();
  Telemetry.set_enabled true;
  ignore (Telemetry.counter "z.last");
  ignore (Telemetry.counter "a.first");
  ignore (Telemetry.gauge "m.middle");
  let names = List.map fst (Telemetry.snapshot ()) in
  Alcotest.(check (list string)) "sorted by name" [ "a.first"; "m.middle"; "z.last" ] names

let test_span () =
  fresh ();
  Telemetry.set_enabled true;
  let v = Telemetry.with_span "t.span" (fun () -> 42) in
  Alcotest.(check int) "with_span passes the result through" 42 v;
  match Telemetry.find "t.span" with
  | Some (Telemetry.Histogram s) ->
    Alcotest.(check int) "one sample" 1 s.Stats.count;
    Alcotest.(check bool) "non-negative duration" true (s.Stats.minimum >= 0.0)
  | _ -> Alcotest.fail "span histogram not found"

(* ------------------------------------------------------------------ *)
(* Tjson. *)

let sample_json =
  Tjson.Obj
    [ ("s", Tjson.String "a\"b\n");
      ("i", Tjson.Int (-3));
      ("f", Tjson.Float 1.5);
      ("whole", Tjson.Float 2.0);
      ("t", Tjson.Bool true);
      ("nul", Tjson.Null);
      ("l", Tjson.List [ Tjson.Int 1; Tjson.Float 0.25 ]) ]

let test_tjson_print () =
  Alcotest.(check string) "deterministic printing"
    "{\"s\":\"a\\\"b\\n\",\"i\":-3,\"f\":1.5,\"whole\":2,\"t\":true,\"nul\":null,\"l\":[1,0.25]}"
    (Tjson.to_string sample_json);
  Alcotest.(check string) "nan prints as null" "null" (Tjson.to_string (Tjson.Float Float.nan))

let test_tjson_roundtrip () =
  let s = Tjson.to_string sample_json in
  match Tjson.of_string s with
  | Error e -> Alcotest.fail ("parse failed: " ^ e)
  | Ok v ->
    Alcotest.(check string) "print . parse . print is stable" s (Tjson.to_string v);
    (match Tjson.member "i" v with
     | Some (Tjson.Int n) -> Alcotest.(check int) "member" (-3) n
     | _ -> Alcotest.fail "member i missing")

let test_tjson_errors () =
  let bad = [ "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ] in
  List.iter
    (fun s ->
       match Tjson.of_string s with
       | Ok _ -> Alcotest.fail (Printf.sprintf "accepted malformed input %S" s)
       | Error _ -> ())
    bad

let test_metrics_jsonl () =
  fresh ();
  Telemetry.set_enabled true;
  Telemetry.add (Telemetry.counter "j.count") 3;
  Telemetry.observe (Telemetry.histogram "j.hist") 2.0;
  let lines = String.split_on_char '\n' (String.trim (Metrics_export.to_jsonl (Telemetry.snapshot ()))) in
  Alcotest.(check int) "one line per metric" 2 (List.length lines);
  List.iter
    (fun line ->
       match Tjson.of_string line with
       | Error e -> Alcotest.fail (Printf.sprintf "line %S does not parse: %s" line e)
       | Ok v ->
         (match Tjson.member "metric" v with
          | Some (Tjson.String _) -> ()
          | _ -> Alcotest.fail "metric field missing"))
    lines

(* ------------------------------------------------------------------ *)
(* Chrome trace export: byte-stable golden output for a fixed tiny
   instance whose schedule exercises both stall kinds. *)

let golden_instance =
  Instance.single_disk ~k:2 ~fetch_time:2 ~initial_cache:[ 0; 1 ] [| 0; 1; 2; 0; 2 |]

let golden_schedule =
  (* Eligible at cursor 2 (t=2), delayed one unit: the unit [2,3) is a
     voluntary-delay stall, the in-flight units [3,5) are involuntary. *)
  [ Fetch_op.make ~at_cursor:2 ~delay:1 ~block:2 ~evict:(Some 1) () ]

let golden_trace = "{\"traceEvents\":[{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":0,\"args\":{\"name\":\"ipc simulation\"}},{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":0,\"args\":{\"name\":\"cpu\"}},{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":0,\"args\":{\"sort_index\":0}},{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":1,\"args\":{\"name\":\"disk 0\"}},{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":1,\"args\":{\"sort_index\":1}},{\"name\":\"serve r1-r2\",\"ph\":\"X\",\"ts\":0,\"pid\":1,\"tid\":0,\"dur\":2000,\"cat\":\"cpu\",\"args\":{\"first_request\":1,\"requests\":2}},{\"name\":\"serve r3-r5\",\"ph\":\"X\",\"ts\":5000,\"pid\":1,\"tid\":0,\"dur\":3000,\"cat\":\"cpu\",\"args\":{\"first_request\":3,\"requests\":3}},{\"name\":\"stall\",\"ph\":\"i\",\"ts\":2000,\"pid\":1,\"tid\":0,\"s\":\"t\",\"cat\":\"stall\"},{\"name\":\"fetch b2\",\"ph\":\"X\",\"ts\":3000,\"pid\":1,\"tid\":1,\"dur\":2000,\"cat\":\"fetch\",\"args\":{\"block\":2,\"disk\":0,\"at_cursor\":2,\"delay\":1,\"evict\":1,\"fetch_time\":2,\"stall_involuntary\":2,\"stall_voluntary\":1}},{\"name\":\"stall\",\"ph\":\"i\",\"ts\":3000,\"pid\":1,\"tid\":0,\"s\":\"t\",\"cat\":\"stall\"},{\"name\":\"stall\",\"ph\":\"i\",\"ts\":4000,\"pid\":1,\"tid\":0,\"s\":\"t\",\"cat\":\"stall\"},{\"name\":\"cache occupancy\",\"ph\":\"C\",\"ts\":0,\"pid\":1,\"tid\":0,\"args\":{\"blocks\":2}}],\"displayTimeUnit\":\"ms\"}"

let test_golden_trace () =
  fresh ();
  match Simulate.run ~record_events:true ~attribution:true golden_instance golden_schedule with
  | Error e -> Alcotest.fail (Printf.sprintf "golden schedule rejected at t=%d: %s" e.Simulate.at_time e.Simulate.reason)
  | Ok stats ->
    Alcotest.(check int) "stall" 3 stats.Simulate.stall_time;
    let actual = Sim_trace.to_string golden_instance stats in
    if actual <> golden_trace then begin
      let path = Filename.temp_file "ipc_trace_actual" ".json" in
      let oc = open_out path in
      output_string oc actual;
      close_out oc;
      Alcotest.fail (Printf.sprintf "trace differs from golden (actual written to %s)" path)
    end;
    (* The golden string is also valid JSON as far as our parser goes. *)
    (match Tjson.of_string actual with
     | Ok _ -> ()
     | Error e -> Alcotest.fail ("trace does not parse: " ^ e))

let test_golden_attribution () =
  fresh ();
  match Simulate.run ~record_events:true ~attribution:true golden_instance golden_schedule with
  | Error _ -> Alcotest.fail "golden schedule rejected"
  | Ok stats ->
    (match stats.Simulate.stall_by_fetch with
     | [ fs ] ->
       Alcotest.(check int) "involuntary" 2 fs.Simulate.involuntary_stall;
       Alcotest.(check int) "voluntary-delay" 1 fs.Simulate.voluntary_stall
     | l -> Alcotest.fail (Printf.sprintf "expected 1 attributed fetch, got %d" (List.length l)))

(* ------------------------------------------------------------------ *)
(* Stall attribution sums exactly to the simulator's stall time, across
   every workload family, several seeds, and all the single-disk
   algorithms. *)

let test_attribution_sums () =
  fresh ();
  List.iter
    (fun (fam : Workload.family) ->
       List.iter
         (fun seed ->
            let inst =
              Workload.single_instance ~k:6 ~fetch_time:5
                (fam.Workload.generate ~seed ~n:80 ~num_blocks:10)
            in
            List.iter
              (fun (alg : Measure.algorithm) ->
                 let sched = alg.Measure.schedule inst in
                 match Simulate.run ~attribution:true inst sched with
                 | Error e ->
                   Alcotest.fail
                     (Printf.sprintf "%s/%s/%d rejected: %s" fam.Workload.name alg.Measure.name seed
                        e.Simulate.reason)
                 | Ok stats ->
                   let attributed =
                     List.fold_left
                       (fun a fs -> a + fs.Simulate.involuntary_stall + fs.Simulate.voluntary_stall)
                       0 stats.Simulate.stall_by_fetch
                   in
                   Alcotest.(check int)
                     (Printf.sprintf "%s/%s/seed=%d attribution total" fam.Workload.name
                        alg.Measure.name seed)
                     stats.Simulate.stall_time attributed;
                   List.iter
                     (fun fs ->
                        Alcotest.(check bool) "charges are non-negative" true
                          (fs.Simulate.involuntary_stall >= 0 && fs.Simulate.voluntary_stall >= 0))
                     stats.Simulate.stall_by_fetch;
                   Alcotest.(check int) "one busy track per disk" inst.Instance.num_disks
                     (Array.length stats.Simulate.disk_busy);
                   Array.iter
                     (fun busy ->
                        Alcotest.(check bool) "disk busy within elapsed" true
                          (busy >= 0 && busy <= stats.Simulate.elapsed_time))
                     stats.Simulate.disk_busy)
              Measure.single_disk_algorithms)
         [ 1; 2 ])
    Workload.families

(* Disabled telemetry leaves the registry untouched even when the
   instrumented paths run. *)
let test_disabled_is_silent () =
  fresh ();
  let inst =
    Workload.single_instance ~k:6 ~fetch_time:4 (Workload.zipf ~seed:1 ~alpha:0.9 ~n:50 ~num_blocks:10)
  in
  (match Simulate.run inst (Aggressive.schedule inst) with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "schedule rejected");
  match Telemetry.find "simulate.runs" with
  | Some (Telemetry.Counter n) -> Alcotest.(check int) "no counts while disabled" 0 n
  | None -> ()  (* cleared registry: also fine *)
  | Some _ -> Alcotest.fail "unexpected kind"

let () =
  Alcotest.run "telemetry"
    [ ("registry",
       [ Alcotest.test_case "counter disabled" `Quick test_counter_disabled;
         Alcotest.test_case "counter enabled" `Quick test_counter_enabled;
         Alcotest.test_case "reset and clear" `Quick test_reset_and_clear;
         Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
         Alcotest.test_case "histogram summary" `Quick test_histogram_summary;
         Alcotest.test_case "snapshot sorted" `Quick test_snapshot_sorted;
         Alcotest.test_case "span" `Quick test_span ]);
      ("tjson",
       [ Alcotest.test_case "printing" `Quick test_tjson_print;
         Alcotest.test_case "roundtrip" `Quick test_tjson_roundtrip;
         Alcotest.test_case "errors" `Quick test_tjson_errors;
         Alcotest.test_case "metrics jsonl" `Quick test_metrics_jsonl ]);
      ("trace",
       [ Alcotest.test_case "golden chrome trace" `Quick test_golden_trace;
         Alcotest.test_case "golden attribution" `Quick test_golden_attribution ]);
      ("attribution",
       [ Alcotest.test_case "sums to stall time" `Quick test_attribution_sums;
         Alcotest.test_case "disabled is silent" `Quick test_disabled_is_silent ]) ]
