(* Unit and property tests for exact rationals. *)

module B = Bigint
module R = Rat

let rt = Alcotest.testable R.pp R.equal

let r = R.of_ints

(* ------------------------------------------------------------------ *)
(* Unit tests. *)

let test_normalization () =
  Alcotest.check rt "6/8 = 3/4" (r 3 4) (r 6 8);
  Alcotest.check rt "-6/8 = -3/4" (r (-3) 4) (r 6 (-8));
  Alcotest.check rt "0/7 = 0" R.zero (r 0 7);
  Alcotest.(check string) "den positive" "1/2" (R.to_string (r (-1) (-2)));
  Alcotest.(check string) "canonical zero" "0" (R.to_string (r 0 (-3)))

let test_constants () =
  Alcotest.check rt "half" (r 1 2) R.half;
  Alcotest.check rt "two" (r 2 1) R.two;
  Alcotest.check rt "one+one" R.two (R.add R.one R.one)

let test_arithmetic_known () =
  Alcotest.check rt "1/2 + 1/3" (r 5 6) (R.add (r 1 2) (r 1 3));
  Alcotest.check rt "1/2 - 1/3" (r 1 6) (R.sub (r 1 2) (r 1 3));
  Alcotest.check rt "2/3 * 3/4" (r 1 2) (R.mul (r 2 3) (r 3 4));
  Alcotest.check rt "1/2 / 1/4" R.two (R.div (r 1 2) (r 1 4));
  Alcotest.check rt "neg" (r (-5) 6) (R.neg (r 5 6));
  Alcotest.check rt "abs" (r 5 6) (R.abs (r (-5) 6))

let test_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true (R.lt (r 1 3) (r 1 2));
  Alcotest.(check bool) "-1/2 < 1/3" true (R.lt (r (-1) 2) (r 1 3));
  Alcotest.(check bool) "2/4 = 1/2" true (R.equal (r 2 4) (r 1 2));
  Alcotest.check rt "min" (r 1 3) (R.min (r 1 3) (r 1 2));
  Alcotest.check rt "max" (r 1 2) (R.max (r 1 3) (r 1 2))

let test_floor_ceil () =
  let bi = Alcotest.testable B.pp B.equal in
  Alcotest.check bi "floor 7/2" (B.of_int 3) (R.floor (r 7 2));
  Alcotest.check bi "floor -7/2" (B.of_int (-4)) (R.floor (r (-7) 2));
  Alcotest.check bi "ceil 7/2" (B.of_int 4) (R.ceil (r 7 2));
  Alcotest.check bi "ceil -7/2" (B.of_int (-3)) (R.ceil (r (-7) 2));
  Alcotest.check bi "floor integer" (B.of_int 5) (R.floor (r 5 1));
  Alcotest.check rt "fractional 7/2" R.half (R.fractional (r 7 2));
  Alcotest.check rt "fractional -7/2" R.half (R.fractional (r (-7) 2));
  Alcotest.check rt "fractional 3" R.zero (R.fractional (r 3 1))

let test_integrality () =
  Alcotest.(check bool) "4/2 integer" true (R.is_integer (r 4 2));
  Alcotest.(check bool) "1/2 not integer" false (R.is_integer R.half);
  Alcotest.(check int) "to_int_exn" 2 (R.to_int_exn (r 4 2));
  (match R.to_int_exn R.half with
   | exception R.Not_an_integer { value } -> Alcotest.(check string) "payload" "1/2" value
   | n -> Alcotest.failf "expected Not_an_integer, got %d" n);
  (* An integral rational too wide for a native int surfaces the Bigint
     overflow error, not a bare Failure. *)
  let huge = R.of_bigint (B.mul (B.of_int max_int) (B.of_int 4)) in
  (match R.to_int_exn huge with
   | exception B.Does_not_fit _ -> ()
   | n -> Alcotest.failf "expected Does_not_fit, got %d" n)

let test_of_string () =
  Alcotest.check rt "p/q" (r 3 4) (R.of_string "3/4");
  Alcotest.check rt "negative p/q" (r (-3) 4) (R.of_string "-3/4");
  Alcotest.check rt "integer" (r 17 1) (R.of_string "17");
  Alcotest.check rt "decimal" (r 5 4) (R.of_string "1.25");
  Alcotest.check rt "neg decimal" (r (-5) 4) (R.of_string "-1.25");
  Alcotest.check rt "decimal frac only" (r 1 2) (R.of_string "0.5")

let test_to_float () =
  Alcotest.(check (float 1e-12)) "0.25" 0.25 (R.to_float (r 1 4));
  Alcotest.(check (float 1e-12)) "-1.5" (-1.5) (R.to_float (r (-3) 2))

let test_division_by_zero () =
  Alcotest.check_raises "div" Division_by_zero (fun () -> ignore (R.div R.one R.zero));
  Alcotest.check_raises "inv" Division_by_zero (fun () -> ignore (R.inv R.zero));
  Alcotest.check_raises "of_ints" Division_by_zero (fun () -> ignore (r 1 0))

let test_infix () =
  let open R.Infix in
  Alcotest.(check bool) "1/2 + 1/2 = 1" true (R.half + R.half = R.one);
  Alcotest.(check bool) "2 * 1/2 = 1" true (R.two * R.half = R.one);
  Alcotest.(check bool) "1 - 1/2 < 1" true (R.one - R.half < R.one);
  Alcotest.(check bool) "1 / 2 = 1/2" true (R.one / R.two = R.half)

(* ------------------------------------------------------------------ *)
(* Property tests. *)

let gen_rat =
  QCheck2.Gen.(
    map
      (fun (p, q) -> R.of_ints p (if q = 0 then 1 else q))
      (pair (int_range (-10_000) 10_000) (int_range (-500) 500)))

let gen_rat_nonzero = QCheck2.Gen.map (fun x -> if R.is_zero x then R.one else x) gen_rat

let prop_add_comm =
  QCheck2.Test.make ~count:500 ~name:"add commutative" QCheck2.Gen.(pair gen_rat gen_rat)
    (fun (a, b) -> R.equal (R.add a b) (R.add b a))

let prop_add_assoc =
  QCheck2.Test.make ~count:500 ~name:"add associative"
    QCheck2.Gen.(triple gen_rat gen_rat gen_rat)
    (fun (a, b, c) -> R.equal (R.add (R.add a b) c) (R.add a (R.add b c)))

let prop_mul_assoc =
  QCheck2.Test.make ~count:500 ~name:"mul associative"
    QCheck2.Gen.(triple gen_rat gen_rat gen_rat)
    (fun (a, b, c) -> R.equal (R.mul (R.mul a b) c) (R.mul a (R.mul b c)))

let prop_distrib =
  QCheck2.Test.make ~count:500 ~name:"distributivity"
    QCheck2.Gen.(triple gen_rat gen_rat gen_rat)
    (fun (a, b, c) -> R.equal (R.mul a (R.add b c)) (R.add (R.mul a b) (R.mul a c)))

let prop_div_inverse =
  QCheck2.Test.make ~count:500 ~name:"(a*b)/b = a" QCheck2.Gen.(pair gen_rat gen_rat_nonzero)
    (fun (a, b) -> R.equal (R.div (R.mul a b) b) a)

let prop_inv_involution =
  QCheck2.Test.make ~count:500 ~name:"inv involutive" gen_rat_nonzero
    (fun a -> R.equal a (R.inv (R.inv a)))

let prop_normalized =
  QCheck2.Test.make ~count:500 ~name:"results normalized" QCheck2.Gen.(pair gen_rat gen_rat)
    (fun (a, b) ->
       let c = R.add a b in
       B.sign (R.den c) > 0 && B.is_one (B.gcd (R.num c) (R.den c)))

let prop_compare_total =
  QCheck2.Test.make ~count:500 ~name:"compare consistent with to_float"
    QCheck2.Gen.(pair gen_rat gen_rat)
    (fun (a, b) ->
       let c = R.compare a b in
       let fa = R.to_float a and fb = R.to_float b in
       (* floats are exact for these small rationals' orderings unless equal *)
       if c = 0 then Float.abs (fa -. fb) < 1e-9
       else if c < 0 then fa < fb +. 1e-9
       else fa > fb -. 1e-9)

let prop_floor_bound =
  QCheck2.Test.make ~count:500 ~name:"floor(x) <= x < floor(x)+1" gen_rat
    (fun a ->
       let f = R.of_bigint (R.floor a) in
       R.le f a && R.lt a (R.add f R.one))

let prop_fractional_range =
  QCheck2.Test.make ~count:500 ~name:"fractional in [0,1)" gen_rat
    (fun a ->
       let f = R.fractional a in
       R.le R.zero f && R.lt f R.one)

let prop_string_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"string roundtrip" gen_rat
    (fun a -> R.equal a (R.of_string (R.to_string a)))

let prop_sign =
  QCheck2.Test.make ~count:500 ~name:"sign matches compare-to-zero" gen_rat
    (fun a -> R.sign a = R.compare a R.zero)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_add_comm; prop_add_assoc; prop_mul_assoc; prop_distrib; prop_div_inverse;
      prop_inv_involution; prop_normalized; prop_compare_total; prop_floor_bound;
      prop_fractional_range; prop_string_roundtrip; prop_sign ]

let () =
  Alcotest.run "rat"
    [ ( "unit",
        [ Alcotest.test_case "normalization" `Quick test_normalization;
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "arithmetic" `Quick test_arithmetic_known;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "floor/ceil" `Quick test_floor_ceil;
          Alcotest.test_case "integrality" `Quick test_integrality;
          Alcotest.test_case "of_string" `Quick test_of_string;
          Alcotest.test_case "to_float" `Quick test_to_float;
          Alcotest.test_case "division by zero" `Quick test_division_by_zero;
          Alcotest.test_case "infix" `Quick test_infix ] );
      ("properties", props) ]
