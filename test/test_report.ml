(* Tests for the HTML report renderer and the bench-diff regression
   gate: a golden-style check that [ipc report] output is deterministic,
   self-contained and survives malformed input, plus unit coverage of
   the comparison/normalization logic behind [ipc bench-diff]. *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let check_contains what needle hay =
  Alcotest.(check bool) (Printf.sprintf "%s (looking for %S)" what needle) true
    (contains ~needle hay)

let check_absent what needle hay =
  Alcotest.(check bool) (Printf.sprintf "%s (must not contain %S)" what needle) false
    (contains ~needle hay)

(* ------------------------------------------------------------------ *)
(* Report rendering.  The metrics/events text is generated through the
   real telemetry pipeline (not hand-written JSON) so the test also
   pins the export -> report contract. *)

let capture_dumps () =
  Telemetry.clear ();
  Telemetry.set_enabled true;
  Event_log.set_capacity Event_log.default_capacity;
  Event_log.set_sample_every 1;
  Event_log.clear ();
  Event_log.set_enabled true;
  let inst =
    Workload.single_instance ~k:4 ~fetch_time:7
      (Workload.zipf ~seed:9 ~alpha:0.9 ~n:250 ~num_blocks:20)
  in
  let (_ : Fetch_op.schedule) = Aggressive.schedule inst in
  Telemetry.set (Telemetry.gauge "scale.seconds.zipf.n250.aggressive") 0.0125;
  Telemetry.set (Telemetry.gauge "scale.seconds.zipf.n500.aggressive") 0.031;
  Event_log.note ~time:3 ~component:"measure" "synthetic diagnostic";
  let metrics = Metrics_export.to_jsonl (Telemetry.snapshot ()) in
  let events = Event_log.to_jsonl (Event_log.contents ()) in
  Event_log.set_enabled false;
  Event_log.clear ();
  Telemetry.set_enabled false;
  Telemetry.clear ();
  (metrics, events)

let test_report_renders () =
  let metrics, events = capture_dumps () in
  let html = Report.render ~title:"test report" ~metrics ~events () in
  check_contains "document shell" "<html" html;
  check_contains "title survives" "test report" html;
  check_contains "counters section" "driver.stall_units" html;
  check_contains "histogram section" "driver.stall_interval" html;
  check_contains "scheduler wall-clock section" "aggressive" html;
  check_contains "diagnostics carry note events" "synthetic diagnostic" html;
  check_contains "event census" "stall_interval" html;
  (* Self-contained and relocatable: no external fetches, no build or
     invocation paths baked into the artifact. *)
  check_absent "no external fetches" "http://" html;
  check_absent "no https fetches" "https://" html;
  check_absent "no absolute paths" (Sys.getcwd ()) html

let test_report_deterministic () =
  let metrics, events = capture_dumps () in
  let a = Report.render ~metrics ~events () in
  let b = Report.render ~metrics ~events () in
  Alcotest.(check string) "same input renders byte-identically" a b;
  let metrics2, events2 = capture_dumps () in
  let c = Report.render ~metrics:metrics2 ~events:events2 () in
  Alcotest.(check string) "same seed renders byte-identically across captures" a c

let test_report_tolerates_garbage () =
  let metrics, events = capture_dumps () in
  let mangled = "not json at all\n" ^ metrics ^ "{\"metric\":\"half\n" in
  let html = Report.render ~metrics:mangled ~events () in
  check_contains "good lines still render" "driver.stall_units" html;
  check_contains "bad lines are counted, not fatal" "skipped 2 unparseable metric line(s)" html

let test_report_without_events () =
  let metrics, _ = capture_dumps () in
  let html = Report.render ~metrics () in
  check_contains "metrics-only report renders" "driver.stall_units" html

(* ------------------------------------------------------------------ *)
(* Bench-diff. *)

let snap entries =
  Printf.sprintf "{\"schema\":\"ipc-bench/1\",\"benchmarks\":[%s]}"
    (String.concat ","
       (List.map
          (fun (name, ns) -> Printf.sprintf "{\"name\":%S,\"ns_per_call\":%g,\"r_square\":0.99}" name ns)
          entries))

let test_bench_diff_parse () =
  (match Bench_diff.parse_snapshot (snap [ ("a", 100.0); ("b", 250.5) ]) with
   | Error e -> Alcotest.fail e
   | Ok rows ->
     Alcotest.(check (list (pair string (float 1e-9)))) "rows"
       [ ("a", 100.0); ("b", 250.5) ] rows);
  (match Bench_diff.parse_snapshot "{\"schema\":\"other/9\",\"benchmarks\":[]}" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "wrong schema accepted");
  (match Bench_diff.parse_snapshot "nonsense" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "malformed snapshot accepted")

let test_bench_diff_gate () =
  let old_ = [ ("a", 100.0); ("b", 100.0); ("gone", 5.0) ] in
  let new_ = [ ("a", 104.0); ("b", 180.0); ("fresh", 7.0) ] in
  let o = Bench_diff.compare_snapshots ~old_ ~new_ () in
  Alcotest.(check int) "one flagged benchmark" 1 o.Bench_diff.violations;
  Alcotest.(check bool) "gate fails at allow=0" true o.Bench_diff.failed;
  Alcotest.(check (list string)) "disappeared benchmarks listed" [ "gone" ] o.Bench_diff.only_old;
  Alcotest.(check (list string)) "baseline-less benchmarks listed" [ "fresh" ] o.Bench_diff.only_new;
  let lenient = { Bench_diff.default_config with Bench_diff.allow = 1 } in
  let o2 = Bench_diff.compare_snapshots ~config:lenient ~old_ ~new_ () in
  Alcotest.(check bool) "noisy-pass quota absorbs it" false o2.Bench_diff.failed;
  (* The hard bound ignores the quota. *)
  let worse = [ ("a", 104.0); ("b", 400.0); ("fresh", 7.0) ] in
  let o3 = Bench_diff.compare_snapshots ~config:lenient ~old_ ~new_:worse () in
  Alcotest.(check bool) "hard x3 bound still fails" true o3.Bench_diff.failed

let test_bench_diff_normalize () =
  (* Every benchmark 2x slower: a machine-speed shift, not a regression.
     Raw mode flags everything; normalized mode flags nothing. *)
  let old_ = [ ("a", 100.0); ("b", 200.0); ("c", 50.0) ] in
  let new_ = [ ("a", 200.0); ("b", 400.0); ("c", 100.0) ] in
  let raw = Bench_diff.compare_snapshots ~old_ ~new_ () in
  Alcotest.(check bool) "raw mode fails on uniform slowdown" true raw.Bench_diff.failed;
  let cfg = { Bench_diff.default_config with Bench_diff.normalize = true } in
  let norm = Bench_diff.compare_snapshots ~config:cfg ~old_ ~new_ () in
  Alcotest.(check (float 1e-9)) "median ratio found" 2.0 norm.Bench_diff.median_ratio;
  Alcotest.(check bool) "normalized mode passes" false norm.Bench_diff.failed;
  Alcotest.(check int) "no violations after normalization" 0 norm.Bench_diff.violations;
  (* A genuine relative regression still fails under normalization. *)
  let skew = [ ("a", 200.0); ("b", 400.0); ("c", 400.0) ] in
  let skewed = Bench_diff.compare_snapshots ~config:cfg ~old_ ~new_:skew () in
  Alcotest.(check bool) "relative regression caught" true skewed.Bench_diff.failed

let test_bench_diff_pp () =
  let o =
    Bench_diff.compare_snapshots ~old_:[ ("a", 1e6); ("b", 1e6) ]
      ~new_:[ ("a", 1e6); ("b", 5e6) ] ()
  in
  let txt = Format.asprintf "%a" (Bench_diff.pp_outcome ?config:None) o in
  check_contains "table lists benchmarks" "b" txt;
  check_contains "verdict line" "FAIL" txt;
  let ok =
    Bench_diff.compare_snapshots ~old_:[ ("a", 1e6) ] ~new_:[ ("a", 1.01e6) ] ()
  in
  let txt_ok = Format.asprintf "%a" (Bench_diff.pp_outcome ?config:None) ok in
  check_contains "passing verdict line" "OK" txt_ok

let () =
  Alcotest.run "report"
    [ ("report",
       [ Alcotest.test_case "renders every section" `Quick test_report_renders;
         Alcotest.test_case "deterministic" `Quick test_report_deterministic;
         Alcotest.test_case "tolerates malformed lines" `Quick test_report_tolerates_garbage;
         Alcotest.test_case "metrics-only" `Quick test_report_without_events ]);
      ("bench-diff",
       [ Alcotest.test_case "snapshot parsing" `Quick test_bench_diff_parse;
         Alcotest.test_case "gate and quotas" `Quick test_bench_diff_gate;
         Alcotest.test_case "median normalization" `Quick test_bench_diff_normalize;
         Alcotest.test_case "outcome printing" `Quick test_bench_diff_pp ]) ]
