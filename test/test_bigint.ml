(* Unit and property tests for the arbitrary-precision integer substrate.
   The reproduction's exact-LP pipeline depends on this module being
   bulletproof, so we test both against native ints (small range) and via
   algebraic identities (huge range). *)

module B = Bigint

let bi = Alcotest.testable B.pp B.equal

(* ------------------------------------------------------------------ *)
(* Unit tests. *)

let test_constants () =
  Alcotest.check bi "zero" (B.of_int 0) B.zero;
  Alcotest.check bi "one" (B.of_int 1) B.one;
  Alcotest.check bi "two" (B.of_int 2) B.two;
  Alcotest.check bi "minus_one" (B.of_int (-1)) B.minus_one;
  Alcotest.(check int) "sign zero" 0 (B.sign B.zero);
  Alcotest.(check int) "sign one" 1 (B.sign B.one);
  Alcotest.(check int) "sign minus_one" (-1) (B.sign B.minus_one)

let test_of_to_int () =
  List.iter
    (fun n ->
       Alcotest.(check int) (Printf.sprintf "roundtrip %d" n) n (B.to_int (B.of_int n)))
    [ 0; 1; -1; 42; -42; 1 lsl 29; (1 lsl 30) - 1; 1 lsl 30; (1 lsl 30) + 17;
      1 lsl 45; -(1 lsl 45); max_int; min_int; max_int - 1; min_int + 1 ]

let test_to_int_overflow () =
  let big = B.mul (B.of_int max_int) (B.of_int 4) in
  Alcotest.(check (option int)) "overflow is None" None (B.to_int_opt big);
  Alcotest.(check bool) "fits_int max_int" true (B.fits_int (B.of_int max_int));
  Alcotest.(check bool) "fits_int min_int" true (B.fits_int (B.of_int min_int));
  Alcotest.(check bool) "not fits" false (B.fits_int big);
  (match B.to_int big with
   | exception B.Does_not_fit { digits; bits } ->
     Alcotest.(check string) "carries digits" (B.to_string big) digits;
     Alcotest.(check bool) "carries width" true (bits > 62)
   | n -> Alcotest.failf "expected Does_not_fit, got %d" n)

(* The native-int boundary: [max_int] = 2^62 - 1 and [min_int] = -2^62
   must convert; one past either end must raise the typed error. *)
let test_to_int_boundary () =
  Alcotest.(check int) "max_int fits" max_int (B.to_int (B.of_int max_int));
  Alcotest.(check int) "min_int fits" min_int (B.to_int (B.of_int min_int));
  let over = B.succ (B.of_int max_int) in
  let under = B.pred (B.of_int min_int) in
  Alcotest.(check (option int)) "max_int+1 is None" None (B.to_int_opt over);
  Alcotest.(check (option int)) "min_int-1 is None" None (B.to_int_opt under);
  List.iter
    (fun (label, x) ->
       match B.to_int x with
       | exception B.Does_not_fit _ -> ()
       | n -> Alcotest.failf "%s: expected Does_not_fit, got %d" label n)
    [ ("max_int+1", over); ("min_int-1", under) ];
  (* Round-trip sanity just inside the boundary via string parsing. *)
  Alcotest.(check int) "2^62-1 via of_string" max_int
    (B.to_int (B.of_string "4611686018427387903"));
  Alcotest.(check int) "-2^62 via of_string" min_int
    (B.to_int (B.of_string "-4611686018427387904"))

let test_string_roundtrip () =
  List.iter
    (fun s ->
       Alcotest.(check string) ("roundtrip " ^ s) s (B.to_string (B.of_string s)))
    [ "0"; "1"; "-1"; "123456789"; "-987654321";
      "123456789012345678901234567890";
      "-340282366920938463463374607431768211456" ]

let test_string_underscores () =
  Alcotest.check bi "underscores" (B.of_int 1_000_000) (B.of_string "1_000_000")

let test_string_invalid () =
  List.iter
    (fun s ->
       Alcotest.check_raises ("invalid " ^ s) (Invalid_argument "Bigint.of_string: invalid character")
         (fun () -> ignore (B.of_string s)))
    [ "12a3"; "1.5" ];
  Alcotest.check_raises "empty" (Invalid_argument "Bigint.of_string: empty string")
    (fun () -> ignore (B.of_string ""))

let test_add_sub_known () =
  let a = B.of_string "99999999999999999999999999" in
  let b = B.of_string "1" in
  Alcotest.check bi "carry chain" (B.of_string "100000000000000000000000000") (B.add a b);
  Alcotest.check bi "sub back" a (B.sub (B.add a b) b)

let test_mul_known () =
  let a = B.of_string "12345678901234567890" in
  let b = B.of_string "98765432109876543210" in
  Alcotest.check bi "big product"
    (B.of_string "1219326311370217952237463801111263526900")
    (B.mul a b);
  Alcotest.check bi "times zero" B.zero (B.mul a B.zero);
  Alcotest.check bi "times -1" (B.neg a) (B.mul a B.minus_one)

let test_divmod_known () =
  let a = B.of_string "1000000000000000000000000000000" in
  let b = B.of_string "999999999999" in
  let q, r = B.divmod a b in
  Alcotest.check bi "reconstruct" a (B.add (B.mul q b) r);
  Alcotest.(check bool) "0 <= r" true (B.compare r B.zero >= 0);
  Alcotest.(check bool) "r < b" true (B.compare r b < 0)

let test_divmod_signs () =
  (* Truncated division: quotient towards zero, remainder has dividend's sign. *)
  let check a b q r =
    let q', r' = B.divmod (B.of_int a) (B.of_int b) in
    Alcotest.check bi (Printf.sprintf "q %d/%d" a b) (B.of_int q) q';
    Alcotest.check bi (Printf.sprintf "r %d/%d" a b) (B.of_int r) r'
  in
  check 7 2 3 1;
  check (-7) 2 (-3) (-1);
  check 7 (-2) (-3) 1;
  check (-7) (-2) 3 (-1)

let test_ediv_rem () =
  let check a b =
    let q, r = B.ediv_rem (B.of_int a) (B.of_int b) in
    Alcotest.(check bool) "0 <= r" true (B.sign r >= 0);
    Alcotest.(check bool) "r < |b|" true (B.compare r (B.abs (B.of_int b)) < 0);
    Alcotest.check bi "identity" (B.of_int a) (B.add (B.mul q (B.of_int b)) r)
  in
  List.iter (fun (a, b) -> check a b) [ (7, 2); (-7, 2); (7, -2); (-7, -2); (0, 5); (6, 3); (-6, 3) ]

let test_div_by_zero () =
  Alcotest.check_raises "divmod" Division_by_zero (fun () -> ignore (B.divmod B.one B.zero));
  Alcotest.check_raises "ediv" Division_by_zero (fun () -> ignore (B.ediv_rem B.one B.zero))

let test_gcd () =
  Alcotest.check bi "gcd(12,18)" (B.of_int 6) (B.gcd (B.of_int 12) (B.of_int 18));
  Alcotest.check bi "gcd(-12,18)" (B.of_int 6) (B.gcd (B.of_int (-12)) (B.of_int 18));
  Alcotest.check bi "gcd(0,5)" (B.of_int 5) (B.gcd B.zero (B.of_int 5));
  Alcotest.check bi "gcd(0,0)" B.zero (B.gcd B.zero B.zero);
  Alcotest.check bi "gcd coprime" B.one (B.gcd (B.of_int 17) (B.of_int 31))

let test_lcm () =
  Alcotest.check bi "lcm(4,6)" (B.of_int 12) (B.lcm (B.of_int 4) (B.of_int 6));
  Alcotest.check bi "lcm(0,5)" B.zero (B.lcm B.zero (B.of_int 5))

let test_pow () =
  Alcotest.check bi "2^10" (B.of_int 1024) (B.pow B.two 10);
  Alcotest.check bi "x^0" B.one (B.pow (B.of_int 7) 0);
  Alcotest.check bi "10^30" (B.of_string "1000000000000000000000000000000") (B.pow (B.of_int 10) 30);
  Alcotest.check bi "(-2)^3" (B.of_int (-8)) (B.pow (B.of_int (-2)) 3);
  Alcotest.check_raises "neg exponent" (Invalid_argument "Bigint.pow: negative exponent")
    (fun () -> ignore (B.pow B.two (-1)))

let test_shifts () =
  Alcotest.check bi "1 << 100 >> 100" B.one (B.shift_right (B.shift_left B.one 100) 100);
  Alcotest.check bi "5 << 3" (B.of_int 40) (B.shift_left (B.of_int 5) 3);
  Alcotest.check bi "41 >> 3" (B.of_int 5) (B.shift_right (B.of_int 41) 3);
  Alcotest.check bi "shift 0" (B.of_int 7) (B.shift_left (B.of_int 7) 0)

let test_num_bits () =
  Alcotest.(check int) "bits 0" 0 (B.num_bits B.zero);
  Alcotest.(check int) "bits 1" 1 (B.num_bits B.one);
  Alcotest.(check int) "bits 4" 3 (B.num_bits (B.of_int 4));
  Alcotest.(check int) "bits 2^100" 101 (B.num_bits (B.shift_left B.one 100))

let test_compare_order () =
  let sorted = List.map B.of_int [ -100; -1; 0; 1; 2; 100 ] in
  let shuffled = List.map B.of_int [ 2; -1; 100; 0; -100; 1 ] in
  Alcotest.(check (list string)) "sort"
    (List.map B.to_string sorted)
    (List.map B.to_string (List.sort B.compare shuffled))

let test_even () =
  Alcotest.(check bool) "0 even" true (B.is_even B.zero);
  Alcotest.(check bool) "1 odd" false (B.is_even B.one);
  Alcotest.(check bool) "-4 even" true (B.is_even (B.of_int (-4)))

let test_to_float () =
  Alcotest.(check (float 1e-9)) "to_float small" 42.0 (B.to_float (B.of_int 42));
  Alcotest.(check (float 1e6)) "to_float 2^70"
    (Float.pow 2.0 70.0) (B.to_float (B.shift_left B.one 70));
  Alcotest.(check (float 1e-9)) "to_float neg" (-17.0) (B.to_float (B.of_int (-17)))

let test_succ_pred () =
  Alcotest.check bi "succ 0" B.one (B.succ B.zero);
  Alcotest.check bi "pred 0" B.minus_one (B.pred B.zero);
  Alcotest.check bi "succ -1" B.zero (B.succ B.minus_one)

let test_mul_int () =
  Alcotest.check bi "mul_int" (B.of_int 84) (B.mul_int (B.of_int 42) 2);
  Alcotest.check bi "mul_int neg" (B.of_int (-84)) (B.mul_int (B.of_int 42) (-2));
  Alcotest.check bi "mul_int big scalar"
    (B.mul (B.of_int 3) (B.of_int (1 lsl 40)))
    (B.mul_int (B.of_int 3) (1 lsl 40))

(* ------------------------------------------------------------------ *)
(* Property tests. *)

let gen_small = QCheck2.Gen.int_range (-1_000_000) 1_000_000

(* Arbitrary magnitude: product of several ints, possibly hundreds of bits. *)
let gen_big =
  QCheck2.Gen.(
    map
      (fun xs -> List.fold_left (fun acc x -> B.add (B.mul acc (B.of_int 1_000_003)) (B.of_int x)) B.zero xs)
      (list_size (int_range 1 12) (int_range (-1_000_000) 1_000_000)))

let prop_small_matches_int name f_big f_int =
  QCheck2.Test.make ~count:1000 ~name QCheck2.Gen.(pair gen_small gen_small)
    (fun (a, b) -> B.equal (f_big (B.of_int a) (B.of_int b)) (B.of_int (f_int a b)))

let prop_add_matches = prop_small_matches_int "add matches int" B.add ( + )
let prop_sub_matches = prop_small_matches_int "sub matches int" B.sub ( - )
let prop_mul_matches = prop_small_matches_int "mul matches int" B.mul ( * )

let prop_divmod_matches =
  QCheck2.Test.make ~count:1000 ~name:"divmod matches int"
    QCheck2.Gen.(pair gen_small gen_small)
    (fun (a, b) ->
       QCheck2.assume (b <> 0);
       let q, r = B.divmod (B.of_int a) (B.of_int b) in
       B.equal q (B.of_int (a / b)) && B.equal r (B.of_int (a mod b)))

let prop_add_comm =
  QCheck2.Test.make ~count:500 ~name:"add commutative (big)"
    QCheck2.Gen.(pair gen_big gen_big)
    (fun (a, b) -> B.equal (B.add a b) (B.add b a))

let prop_add_assoc =
  QCheck2.Test.make ~count:500 ~name:"add associative (big)"
    QCheck2.Gen.(triple gen_big gen_big gen_big)
    (fun (a, b, c) -> B.equal (B.add (B.add a b) c) (B.add a (B.add b c)))

let prop_mul_comm =
  QCheck2.Test.make ~count:300 ~name:"mul commutative (big)"
    QCheck2.Gen.(pair gen_big gen_big)
    (fun (a, b) -> B.equal (B.mul a b) (B.mul b a))

let prop_mul_assoc =
  QCheck2.Test.make ~count:200 ~name:"mul associative (big)"
    QCheck2.Gen.(triple gen_big gen_big gen_big)
    (fun (a, b, c) -> B.equal (B.mul (B.mul a b) c) (B.mul a (B.mul b c)))

let prop_distrib =
  QCheck2.Test.make ~count:300 ~name:"mul distributes over add (big)"
    QCheck2.Gen.(triple gen_big gen_big gen_big)
    (fun (a, b, c) -> B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)))

let prop_sub_inverse =
  QCheck2.Test.make ~count:500 ~name:"(a+b)-b = a (big)"
    QCheck2.Gen.(pair gen_big gen_big)
    (fun (a, b) -> B.equal (B.sub (B.add a b) b) a)

let prop_divmod_identity =
  QCheck2.Test.make ~count:500 ~name:"a = q*b + r with |r|<|b| (big)"
    QCheck2.Gen.(pair gen_big gen_big)
    (fun (a, b) ->
       QCheck2.assume (not (B.is_zero b));
       let q, r = B.divmod a b in
       B.equal a (B.add (B.mul q b) r)
       && B.compare (B.abs r) (B.abs b) < 0
       && (B.is_zero r || B.sign r = B.sign a))

let prop_div_exact =
  QCheck2.Test.make ~count:500 ~name:"(a*b)/b = a (big)"
    QCheck2.Gen.(pair gen_big gen_big)
    (fun (a, b) ->
       QCheck2.assume (not (B.is_zero b));
       B.equal (B.div (B.mul a b) b) a)

let prop_gcd_divides =
  QCheck2.Test.make ~count:300 ~name:"gcd divides both (big)"
    QCheck2.Gen.(pair gen_big gen_big)
    (fun (a, b) ->
       QCheck2.assume (not (B.is_zero a) || not (B.is_zero b));
       let g = B.gcd a b in
       B.sign g > 0 && B.is_zero (B.rem a g) && B.is_zero (B.rem b g))

let prop_gcd_linearity =
  QCheck2.Test.make ~count:300 ~name:"gcd(a,b) = gcd(b, a mod b) (big)"
    QCheck2.Gen.(pair gen_big gen_big)
    (fun (a, b) ->
       QCheck2.assume (not (B.is_zero b));
       B.equal (B.gcd a b) (B.gcd b (B.rem a b)))

let prop_string_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"string roundtrip (big)" gen_big
    (fun a -> B.equal a (B.of_string (B.to_string a)))

let prop_compare_antisym =
  QCheck2.Test.make ~count:500 ~name:"compare antisymmetric (big)"
    QCheck2.Gen.(pair gen_big gen_big)
    (fun (a, b) -> B.compare a b = - (B.compare b a))

let prop_shift_mul =
  QCheck2.Test.make ~count:300 ~name:"shift_left = mul by 2^n"
    QCheck2.Gen.(pair gen_big (int_range 0 80))
    (fun (a, n) -> B.equal (B.shift_left a n) (B.mul a (B.pow B.two n)))

let prop_neg_involution =
  QCheck2.Test.make ~count:500 ~name:"neg involutive (big)" gen_big
    (fun a -> B.equal a (B.neg (B.neg a)))

let prop_hash_consistent =
  QCheck2.Test.make ~count:500 ~name:"equal implies same hash" gen_big
    (fun a ->
       let b = B.add (B.sub a B.one) B.one in
       B.equal a b && B.hash a = B.hash b)

(* Huge operands cross the Karatsuba threshold (32 limbs = ~960 bits);
   validate against modular arithmetic (division is Knuth D, independent of
   multiplication) and ring identities. *)
let gen_huge =
  QCheck2.Gen.(
    map2
      (fun bits x ->
         let seedling = B.add (B.of_int x) B.one in
         (* spread entropy across ~bits bits *)
         let rec grow acc =
           if B.num_bits acc >= bits then acc
           else grow (B.add (B.mul acc seedling) (B.of_int (x land 0xffff)))
         in
         grow seedling)
      (int_range 1000 3000)
      (int_range 2 1_000_000))

let prop_karatsuba_mod_check =
  QCheck2.Test.make ~count:60 ~name:"huge product correct modulo primes"
    QCheck2.Gen.(pair gen_huge gen_huge)
    (fun (a, b) ->
       let p = B.of_int 1_000_000_007 in
       let q = B.of_int 998_244_353 in
       let check m =
         let r1 = B.rem (B.mul a b) m in
         let r2 = B.rem (B.mul (B.rem a m) (B.rem b m)) m in
         B.equal r1 r2
       in
       check p && check q)

let prop_karatsuba_square_identity =
  QCheck2.Test.make ~count:40 ~name:"(a+b)^2 = a^2 + 2ab + b^2 (huge)"
    QCheck2.Gen.(pair gen_huge gen_huge)
    (fun (a, b) ->
       let lhs = B.mul (B.add a b) (B.add a b) in
       let rhs = B.add (B.mul a a) (B.add (B.mul_int (B.mul a b) 2) (B.mul b b)) in
       B.equal lhs rhs)

let prop_karatsuba_div_roundtrip =
  QCheck2.Test.make ~count:40 ~name:"(a*b)/b = a (huge)"
    QCheck2.Gen.(pair gen_huge gen_huge)
    (fun (a, b) -> B.equal (B.div (B.mul a b) b) a)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_add_matches; prop_sub_matches; prop_mul_matches; prop_divmod_matches;
      prop_add_comm; prop_add_assoc; prop_mul_comm; prop_mul_assoc; prop_distrib;
      prop_sub_inverse; prop_divmod_identity; prop_div_exact; prop_gcd_divides;
      prop_gcd_linearity; prop_string_roundtrip; prop_compare_antisym;
      prop_shift_mul; prop_neg_involution; prop_hash_consistent;
      prop_karatsuba_mod_check; prop_karatsuba_square_identity; prop_karatsuba_div_roundtrip ]

let () =
  Alcotest.run "bigint"
    [ ( "unit",
        [ Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "of/to int" `Quick test_of_to_int;
          Alcotest.test_case "to_int overflow" `Quick test_to_int_overflow;
          Alcotest.test_case "to_int boundary" `Quick test_to_int_boundary;
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "string underscores" `Quick test_string_underscores;
          Alcotest.test_case "string invalid" `Quick test_string_invalid;
          Alcotest.test_case "add/sub carries" `Quick test_add_sub_known;
          Alcotest.test_case "mul known" `Quick test_mul_known;
          Alcotest.test_case "divmod known" `Quick test_divmod_known;
          Alcotest.test_case "divmod signs" `Quick test_divmod_signs;
          Alcotest.test_case "ediv_rem" `Quick test_ediv_rem;
          Alcotest.test_case "division by zero" `Quick test_div_by_zero;
          Alcotest.test_case "gcd" `Quick test_gcd;
          Alcotest.test_case "lcm" `Quick test_lcm;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "num_bits" `Quick test_num_bits;
          Alcotest.test_case "compare order" `Quick test_compare_order;
          Alcotest.test_case "is_even" `Quick test_even;
          Alcotest.test_case "to_float" `Quick test_to_float;
          Alcotest.test_case "succ/pred" `Quick test_succ_pred;
          Alcotest.test_case "mul_int" `Quick test_mul_int ] );
      ("properties", props) ]
