(* Differential tests for the branch-and-bound exact-optimum engine.

   The pruning rules (incumbent seeding, admissible lower bounds,
   cache-mask dominance) must leave the returned stall values
   bit-identical to the unpruned searches they replaced.  This file keeps
   compact copies of the three pre-engine reference solvers (memoized
   recursion for the greedy-content DP, Set-as-priority-queue Dijkstra
   for the exhaustive single and parallel searches) and replays the fuzz
   corpus (Ck_gen, seed 42 - the same generator and seed CI fuzzes with)
   through both. *)

(* ------------------------------------------------------------------ *)
(* Reference 1: greedy-content DP by memoized recursion (ex Opt_single). *)

let ref_opt_single (inst : Instance.t) : int =
  let n = Instance.length inst in
  let num_blocks = Instance.num_blocks inst in
  let seq = inst.Instance.seq in
  let k = inst.Instance.cache_size in
  let f = inst.Instance.fetch_time in
  let nr = Next_ref.of_instance inst in
  let initial_mask = List.fold_left (fun m b -> m lor (1 lsl b)) 0 inst.Instance.initial_cache in
  let memo : (int * int, int) Hashtbl.t = Hashtbl.create 4096 in
  let popcount m =
    let rec go m acc = if m = 0 then acc else go (m land (m - 1)) (acc + 1) in
    go m 0
  in
  let next_missing mask c =
    let rec scan i =
      if i >= n then None else if mask land (1 lsl seq.(i)) = 0 then Some i else scan (i + 1)
    in
    scan c
  in
  let furthest mask c =
    let best = ref (-1) and best_next = ref (-1) in
    for b = 0 to num_blocks - 1 do
      if mask land (1 lsl b) <> 0 then begin
        let nx = Next_ref.next_at_or_after nr b c in
        if nx > !best_next then begin
          best_next := nx;
          best := b
        end
      end
    done;
    (!best, !best_next)
  in
  let rec search c mask =
    if c >= n then 0
    else begin
      match Hashtbl.find_opt memo (c, mask) with
      | Some v -> v
      | None ->
        let v =
          match next_missing mask c with
          | None -> 0
          | Some p ->
            let fetch_cost =
              let mask', ok =
                if popcount mask < k then (mask, true)
                else begin
                  let e, e_next = furthest mask c in
                  if e >= 0 && e_next > p then (mask land lnot (1 lsl e), true) else (mask, false)
                end
              in
              if not ok then max_int
              else begin
                let c', stall = Opt.roll_forward inst ~c ~mask:mask' ~f in
                let rest = search c' (mask' lor (1 lsl seq.(p))) in
                if rest = max_int then max_int else stall + rest
              end
            in
            let serve_cost =
              if mask land (1 lsl seq.(c)) <> 0 then search (c + 1) mask else max_int
            in
            Stdlib.min fetch_cost serve_cost
        in
        Hashtbl.replace memo (c, mask) v;
        v
    end
  in
  search 0 initial_mask

(* ------------------------------------------------------------------ *)
(* Reference 2: assumption-free eviction search by Set-PQ Dijkstra
   (ex Opt_exhaustive). *)

module Pq1 = Set.Make (struct
  type t = int * int * int

  let compare = compare
end)

let ref_opt_exhaustive (inst : Instance.t) : int =
  let n = Instance.length inst in
  let num_blocks = Instance.num_blocks inst in
  let seq = inst.Instance.seq in
  let k = inst.Instance.cache_size in
  let f = inst.Instance.fetch_time in
  let initial_mask = List.fold_left (fun m b -> m lor (1 lsl b)) 0 inst.Instance.initial_cache in
  let popcount m =
    let rec go m acc = if m = 0 then acc else go (m land (m - 1)) (acc + 1) in
    go m 0
  in
  let next_missing mask c =
    let rec scan i =
      if i >= n then None else if mask land (1 lsl seq.(i)) = 0 then Some i else scan (i + 1)
    in
    scan c
  in
  let dist : (int * int, int) Hashtbl.t = Hashtbl.create 4096 in
  let pq = ref (Pq1.singleton (0, 0, initial_mask)) in
  let push d c mask =
    match Hashtbl.find_opt dist (c, mask) with
    | Some d' when d' <= d -> ()
    | _ ->
      Hashtbl.replace dist (c, mask) d;
      pq := Pq1.add (d, c, mask) !pq
  in
  Hashtbl.replace dist (0, initial_mask) 0;
  let answer = ref None in
  while !answer = None do
    match Pq1.min_elt_opt !pq with
    | None -> failwith "ref_opt_exhaustive: exhausted queue"
    | Some ((d, c, mask) as node) ->
      pq := Pq1.remove node !pq;
      if Hashtbl.find_opt dist (c, mask) = Some d then begin
        match next_missing mask c with
        | None -> answer := Some d
        | Some p ->
          let fetch_from mask' =
            let c', stall = Opt.roll_forward inst ~c ~mask:mask' ~f in
            push (d + stall) c' (mask' lor (1 lsl seq.(p)))
          in
          if popcount mask < k then fetch_from mask;
          if popcount mask >= k then
            for e = 0 to num_blocks - 1 do
              if mask land (1 lsl e) <> 0 then fetch_from (mask land lnot (1 lsl e))
            done;
          if mask land (1 lsl seq.(c)) <> 0 then push d (c + 1) mask
      end
  done;
  Option.get !answer

(* ------------------------------------------------------------------ *)
(* Reference 3: parallel timeline search by Set-PQ Dijkstra
   (ex Opt_parallel). *)

type flight = (int * int) option

module Pq2 = Set.Make (struct
  type t = int * (int * int * flight array)

  let compare = compare
end)

let ref_opt_parallel ?(extra_slots = 0) (inst : Instance.t) : int =
  let n = Instance.length inst in
  let num_blocks = Instance.num_blocks inst in
  let seq = inst.Instance.seq in
  let k = inst.Instance.cache_size + extra_slots in
  let f = inst.Instance.fetch_time in
  let nd = inst.Instance.num_disks in
  let initial_mask = List.fold_left (fun m b -> m lor (1 lsl b)) 0 inst.Instance.initial_cache in
  let popcount m =
    let rec go m acc = if m = 0 then acc else go (m land (m - 1)) (acc + 1) in
    go m 0
  in
  let next_missing_on_disk mask flights disk c =
    let in_flight b = Array.exists (function Some (b', _) -> b' = b | None -> false) flights in
    let rec scan i =
      if i >= n then None
      else begin
        let b = seq.(i) in
        if mask land (1 lsl b) = 0 && (not (in_flight b)) && inst.Instance.disk_of.(b) = disk
        then Some b
        else scan (i + 1)
      end
    in
    scan c
  in
  let dist = Hashtbl.create 4096 in
  let start = (0, initial_mask, Array.make nd None) in
  Hashtbl.replace dist start 0;
  let pq = ref (Pq2.singleton (0, start)) in
  let push d state =
    match Hashtbl.find_opt dist state with
    | Some d' when d' <= d -> ()
    | _ ->
      Hashtbl.replace dist state d;
      pq := Pq2.add (d, state) !pq
  in
  let answer = ref None in
  while !answer = None do
    match Pq2.min_elt_opt !pq with
    | None -> failwith "ref_opt_parallel: exhausted queue"
    | Some ((d, ((c, mask, flights) as state)) as node) ->
      pq := Pq2.remove node !pq;
      if Hashtbl.find_opt dist state = Some d then begin
        if c >= n then answer := Some d
        else begin
          let options_for_disk disk =
            match flights.(disk) with
            | Some _ -> [ `Keep ]
            | None ->
              (match next_missing_on_disk mask flights disk c with
               | None -> [ `Keep ]
               | Some b ->
                 let evictions = ref [] in
                 for e = 0 to num_blocks - 1 do
                   if mask land (1 lsl e) <> 0 then evictions := `Start (b, Some e) :: !evictions
                 done;
                 `Keep :: `Start (b, None) :: !evictions)
          in
          let rec combos disk acc =
            if disk >= nd then [ acc ]
            else
              List.concat_map (fun opt -> combos (disk + 1) ((disk, opt) :: acc)) (options_for_disk disk)
          in
          List.iter
            (fun combo ->
               let mask' = ref mask in
               let flights' = Array.copy flights in
               let in_flight_cnt =
                 ref (Array.fold_left (fun a x -> if x = None then a else a + 1) 0 flights)
               in
               let ok = ref true in
               List.iter
                 (fun (disk, opt) ->
                    match opt with
                    | `Keep -> ()
                    | `Start (b, evict) ->
                      (match evict with
                       | Some e ->
                         if !mask' land (1 lsl e) = 0 then ok := false
                         else mask' := !mask' land lnot (1 lsl e)
                       | None -> ());
                      if !ok then begin
                        flights'.(disk) <- Some (b, f);
                        incr in_flight_cnt
                      end)
                 combo;
               if !ok && popcount !mask' + !in_flight_cnt <= k then begin
                 let served = !mask' land (1 lsl seq.(c)) <> 0 in
                 let c' = if served then c + 1 else c in
                 let cost = if served then 0 else 1 in
                 if served || !in_flight_cnt > 0 then begin
                   let mask'' = ref !mask' in
                   let flights'' =
                     Array.map
                       (function
                         | Some (b, 1) ->
                           mask'' := !mask'' lor (1 lsl b);
                           None
                         | Some (b, r) -> Some (b, r - 1)
                         | None -> None)
                       flights'
                   in
                   push (d + cost) (c', !mask'', flights'')
                 end
               end)
            (combos 0 [])
        end
      end
  done;
  Option.get !answer

(* ------------------------------------------------------------------ *)
(* Corpus agreement: every fuzz-corpus case small enough for a reference
   solver must get the identical stall value from the engine. *)

let solve_ok what = function
  | Ok (o : Opt.outcome) -> o
  | Error _ -> Alcotest.failf "%s: engine failed where the reference succeeds" what

let corpus_cases = 600

let test_corpus_agreement () =
  let singles = ref 0 and exhaustives = ref 0 and parallels = ref 0 in
  for index = 0 to corpus_cases - 1 do
    let case = Ck_gen.generate ~seed:42 ~index in
    let inst = case.Ck_gen.inst in
    let n = Instance.length inst in
    let blocks = Instance.num_blocks inst in
    let d = inst.Instance.num_disks in
    if d = 1 && n <= Ck_oracle.differential_single_ceiling
       && blocks <= Ck_oracle.differential_single_blocks
    then begin
      incr singles;
      let o = solve_ok case.Ck_gen.descr (Opt.solve_single inst) in
      let expect = ref_opt_single inst in
      if o.Opt.stall <> expect then
        Alcotest.failf "case %d (%s): engine DP stall %d, reference %d" index
          case.Ck_gen.descr o.Opt.stall expect;
      (* The witness must replay to exactly the claimed stall. *)
      (match o.Opt.schedule with
       | None -> Alcotest.failf "case %d: no witness" index
       | Some sched -> (
         match Simulate.stall_time inst sched with
         | Error e ->
           Alcotest.failf "case %d (%s): witness rejected at t=%d: %s" index
             case.Ck_gen.descr e.Simulate.at_time e.Simulate.reason
         | Ok realized ->
           if realized <> o.Opt.stall then
             Alcotest.failf "case %d (%s): witness stall %d <> claimed %d" index
               case.Ck_gen.descr realized o.Opt.stall));
      incr exhaustives;
      let ox = solve_ok case.Ck_gen.descr (Opt.solve_single ~free_evict:true inst) in
      let expect_x = ref_opt_exhaustive inst in
      if ox.Opt.stall <> expect_x then
        Alcotest.failf "case %d (%s): engine exhaustive stall %d, reference %d" index
          case.Ck_gen.descr ox.Opt.stall expect_x
    end;
    if n <= 12 && blocks <= 8 && d <= 2 then begin
      incr parallels;
      let o = solve_ok case.Ck_gen.descr (Opt.solve_parallel inst) in
      let expect = ref_opt_parallel inst in
      if o.Opt.stall <> expect then
        Alcotest.failf "case %d (%s): engine parallel stall %d, reference %d" index
          case.Ck_gen.descr o.Opt.stall expect;
      let extra = 2 * (d - 1) in
      let oe = solve_ok case.Ck_gen.descr (Opt.solve_parallel ~extra_slots:extra inst) in
      let expect_e = ref_opt_parallel ~extra_slots:extra inst in
      if oe.Opt.stall <> expect_e then
        Alcotest.failf "case %d (%s): engine parallel(+%d slots) stall %d, reference %d"
          index case.Ck_gen.descr extra oe.Opt.stall expect_e
    end
  done;
  (* The gates must not be accidentally dead. *)
  Alcotest.(check bool) "single-disk coverage" true (!singles >= 50);
  Alcotest.(check bool) "exhaustive coverage" true (!exhaustives >= 50);
  Alcotest.(check bool) "parallel coverage" true (!parallels >= 50)

(* ------------------------------------------------------------------ *)
(* Budget, stats and the lifted block-count guard. *)

let cold_instance () =
  Instance.single_disk ~k:2 ~fetch_time:4 ~initial_cache:[]
    [| 0; 1; 2; 3; 4; 5; 0; 1; 2; 3 |]

let test_budget_exhausted () =
  let inst = cold_instance () in
  (match Opt.solve_single ~node_budget:1 inst with
   | Error (Opt.Budget_exhausted { budget; expanded }) ->
     Alcotest.(check int) "budget echoed" 1 budget;
     Alcotest.(check bool) "expanded counted" true (expanded >= 1)
   | Ok _ -> Alcotest.fail "restricted search finished within 1 node"
   | Error Opt.Infeasible -> Alcotest.fail "unexpected Infeasible");
  (match Opt.solve_single ~node_budget:1 ~free_evict:true inst with
   | Error (Opt.Budget_exhausted _) -> ()
   | _ -> Alcotest.fail "exhaustive search finished within 1 node");
  let pinst =
    Instance.parallel ~k:2 ~fetch_time:4 ~num_disks:2
      ~disk_of:[| 0; 1; 0; 1; 0; 1 |] ~initial_cache:[]
      [| 0; 1; 2; 3; 4; 5 |]
  in
  (match Opt.solve_parallel ~node_budget:1 pinst with
   | Error (Opt.Budget_exhausted _) -> ()
   | _ -> Alcotest.fail "parallel search finished within 1 node");
  (* The legacy wrapper surfaces the failure as the typed exception. *)
  Alcotest.(check bool) "wrapper raises Solver_failure" true
    (try
       ignore (Opt_parallel.solve_stall pinst);
       true (* unbudgeted: must succeed *)
     with Opt.Solver_failure _ -> false)

let test_stats_sanity () =
  let inst = cold_instance () in
  let o = solve_ok "stats" (Opt.solve_single inst) in
  let s = o.Opt.stats in
  Alcotest.(check bool) "expanded positive" true (s.Opt.expanded > 0);
  Alcotest.(check bool) "counters non-negative" true
    (s.Opt.pruned >= 0 && s.Opt.dominated >= 0 && s.Opt.deduped >= 0);
  (match s.Opt.incumbent_stall with
   | None -> Alcotest.fail "no incumbent on a feasible instance"
   | Some ub ->
     Alcotest.(check bool) "incumbent is an upper bound" true (o.Opt.stall <= ub);
     Alcotest.(check bool) "improved iff beat incumbent" true
       (s.Opt.improved = (o.Opt.stall < ub)))

(* More than 30 distinct blocks: the old Opt_parallel guard rejected
   this; the engine accepts up to 62 and must agree with the single-disk
   DP when D = 1. *)
let test_wide_mask_parallel () =
  let n = 32 in
  let seq = Array.init n (fun i -> i) in
  let inst = Instance.single_disk ~k:8 ~fetch_time:2 ~initial_cache:[ 0; 1; 2; 3; 4; 5; 6; 7 ] seq in
  let o = solve_ok "wide mask" (Opt.solve_parallel inst) in
  Alcotest.(check int) "agrees with single-disk DP" (Opt_single.stall_time inst) o.Opt.stall

let test_ceilings_floor () =
  Alcotest.(check bool) "single ceiling >= 18" true
    (Ck_oracle.differential_single_ceiling >= 18);
  Alcotest.(check bool) "parallel ceiling >= 14" true
    (Ck_oracle.differential_parallel_ceiling >= 14);
  Alcotest.(check bool) "node budget positive" true (Ck_oracle.differential_node_budget > 0)

let () =
  Alcotest.run "opt_engine"
    [ ( "corpus",
        [ Alcotest.test_case "bit-identical to pre-engine solvers" `Quick
            test_corpus_agreement ] );
      ( "engine",
        [ Alcotest.test_case "budget exhaustion is typed" `Quick test_budget_exhausted;
          Alcotest.test_case "stats sanity" `Quick test_stats_sanity;
          Alcotest.test_case "wide-mask parallel (> 30 blocks)" `Quick test_wide_mask_parallel;
          Alcotest.test_case "fuzz ceilings raised" `Quick test_ceilings_floor ] ) ]
