(* Tests for the 0-1 branch-and-bound solver and its use on the
   synchronized program. *)

module P = Lp_problem
module R = Rat

let rt = Alcotest.testable R.pp R.equal

(* Build a 0-1 knapsack as a minimization:
   min -sum v_i x_i  s.t.  sum w_i x_i <= cap, 0 <= x <= 1. *)
let knapsack values weights cap =
  let b = P.Builder.create ~direction:P.Minimize () in
  let vars = List.mapi (fun i _ -> P.Builder.add_var b (Printf.sprintf "x%d" i)) values in
  P.Builder.set_objective b (List.mapi (fun i v -> (i, R.of_int (-v))) values);
  P.Builder.add_row b (List.mapi (fun i w -> (i, R.of_int w)) weights) P.Le (R.of_int cap);
  List.iter (fun v -> P.Builder.add_row b [ (v, R.one) ] P.Le R.one) vars;
  P.Builder.freeze b

let brute_knapsack values weights cap =
  let n = List.length values in
  let va = Array.of_list values and wa = Array.of_list weights in
  let best = ref 0 in
  for mask = 0 to (1 lsl n) - 1 do
    let v = ref 0 and w = ref 0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        v := !v + va.(i);
        w := !w + wa.(i)
      end
    done;
    if !w <= cap && !v > !best then best := !v
  done;
  !best

let test_knapsack_known () =
  (* values 60,100,120 / weights 10,20,30 / cap 50 -> 220. *)
  let p = knapsack [ 60; 100; 120 ] [ 10; 20; 30 ] 50 in
  let o = Ilp.solve p in
  Alcotest.(check bool) "proved" true o.Ilp.proved_optimal;
  (match o.Ilp.result with
   | P.Optimal { objective_value; values } ->
     Alcotest.check rt "objective" (R.of_int (-220)) objective_value;
     Array.iter
       (fun v -> Alcotest.(check bool) "binary" true (R.is_zero v || R.equal v R.one))
       values
   | _ -> Alcotest.fail "expected optimal")

let test_ilp_infeasible () =
  let b = P.Builder.create () in
  let x = P.Builder.add_var b "x" in
  P.Builder.add_row b [ (x, R.one) ] P.Ge (R.of_int 2);
  P.Builder.add_row b [ (x, R.one) ] P.Le R.one;
  let p = P.Builder.freeze b in
  match (Ilp.solve p).Ilp.result with
  | P.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

(* Unbounded relaxation surfaces as the typed exception, not a crash
   (satellite bugfix: this was a bare [failwith]). *)
let test_ilp_unbounded_typed () =
  let b = P.Builder.create ~direction:P.Minimize () in
  let y = P.Builder.add_var b "y" in
  let z = P.Builder.add_var b "z" in
  P.Builder.set_objective b [ (y, R.of_int (-1)) ];
  (* z is capped but y is free upwards: the root relaxation is unbounded. *)
  P.Builder.add_row b [ (z, R.one) ] P.Le R.one;
  let p = P.Builder.freeze b in
  match Ilp.solve p with
  | exception Ilp.Unbounded_relaxation { depth; nodes_explored } ->
    Alcotest.(check int) "at the root" 0 depth;
    Alcotest.(check bool) "no nodes finished" true (nodes_explored >= 0)
  | _ -> Alcotest.fail "expected Unbounded_relaxation"

(* The warm-started revised node solver must price the same optima as the
   dense solver with warm starts disabled, and actually exercise the
   warm-start path on a branching instance. *)
let test_ilp_warm_vs_dense () =
  let p = knapsack [ 10; 7; 25; 24; 13; 8 ] [ 3; 2; 6; 5; 4; 3 ] 10 in
  let s0 = Simplex.stats_snapshot () in
  let warm = Ilp.solve p in
  let d = Simplex.stats_since s0 in
  let dense = Ilp.solve ~solver:Simplex.solve_exact p in
  (match (warm.Ilp.result, dense.Ilp.result) with
   | P.Optimal { objective_value = v1; _ }, P.Optimal { objective_value = v2; _ } ->
     Alcotest.check rt "same optimum" v2 v1
   | _ -> Alcotest.fail "expected optimal from both");
  Alcotest.(check bool) "warm starts exercised" true (d.Simplex.warm_accepts > 0)

let prop_ilp_warm_matches_dense =
  QCheck2.Test.make ~count:60 ~name:"warm-started ILP = dense-node ILP"
    QCheck2.Gen.(
      let* n = int_range 1 7 in
      let* values = list_size (return n) (int_range 1 30) in
      let* weights = list_size (return n) (int_range 1 15) in
      let* cap = int_range 1 40 in
      return (values, weights, cap))
    (fun (values, weights, cap) ->
       let p = knapsack values weights cap in
       let warm = Ilp.solve p in
       let dense = Ilp.solve ~solver:Simplex.solve_exact p in
       match (warm.Ilp.result, dense.Ilp.result) with
       | P.Optimal { objective_value = v1; _ }, P.Optimal { objective_value = v2; _ } ->
         R.equal v1 v2
       | P.Infeasible, P.Infeasible -> true
       | _ -> false)

let prop_knapsack_matches_brute =
  QCheck2.Test.make ~count:100 ~name:"ILP knapsack = brute force"
    QCheck2.Gen.(
      let* n = int_range 1 8 in
      let* values = list_size (return n) (int_range 1 30) in
      let* weights = list_size (return n) (int_range 1 15) in
      let* cap = int_range 1 40 in
      return (values, weights, cap))
    (fun (values, weights, cap) ->
       let o = Ilp.solve (knapsack values weights cap) in
       match o.Ilp.result with
       | P.Optimal { objective_value; _ } ->
         o.Ilp.proved_optimal
         && R.equal objective_value (R.of_int (- brute_knapsack values weights cap))
       | _ -> false)

(* Sandwich: LP <= ILP, and the rounded schedule never exceeds the ILP
   optimum (it may use more extra slots, so it may be strictly better). *)
let gen_tiny_parallel =
  QCheck2.Gen.(
    let* d = int_range 1 3 in
    let* nblocks = int_range (2 * d) 6 in
    let* n = int_range 2 7 in
    let* seq = array_size (return n) (int_range 0 (nblocks - 1)) in
    let* k = int_range 2 3 in
    let* f = int_range 1 3 in
    let num_blocks = Array.fold_left Stdlib.max 0 seq + 1 in
    let disk_of = Workload.striped_layout ~num_blocks ~num_disks:d in
    let init = Instance.warm_initial_cache ~k seq in
    return (Instance.parallel ~k ~fetch_time:f ~num_disks:d ~disk_of ~initial_cache:init seq))

let prop_sandwich =
  QCheck2.Test.make ~count:40 ~name:"LP <= ILP and rounded <= ILP" gen_tiny_parallel
    (fun inst ->
       let r = Rounding.solve inst in
       let ilp = Sync_ilp.solve inst in
       if not ilp.Sync_ilp.proved_optimal then true (* budget exhausted: skip *)
       else if R.gt r.Rounding.lp_value ilp.Sync_ilp.stall then
         QCheck2.Test.fail_reportf "LP %s > ILP %s" (R.to_string r.Rounding.lp_value)
           (R.to_string ilp.Sync_ilp.stall)
       else if R.gt (R.of_int r.Rounding.stats.Simulate.stall_time) ilp.Sync_ilp.stall then
         QCheck2.Test.fail_reportf "rounded %d > ILP %s" r.Rounding.stats.Simulate.stall_time
           (R.to_string ilp.Sync_ilp.stall)
       else true)

(* The ILP's synchronized optimum is itself sandwiched by the true optima
   with k and k + D - 1 slots. *)
let prop_ilp_vs_opt =
  QCheck2.Test.make ~count:25 ~name:"OPT(k + D - 1) <= ILP <= OPT(k)" gen_tiny_parallel
    (fun inst ->
       let ilp = Sync_ilp.solve inst in
       if not ilp.Sync_ilp.proved_optimal then true
       else begin
         let d = inst.Instance.num_disks in
         let opt_k = Opt_parallel.solve_stall inst in
         let opt_aug = Opt_parallel.solve_stall ~extra_slots:(d - 1) inst in
         R.le ilp.Sync_ilp.stall (R.of_int opt_k)
         && R.ge ilp.Sync_ilp.stall (R.of_int opt_aug)
       end)

let () =
  Alcotest.run "ilp"
    [ ( "unit",
        [ Alcotest.test_case "knapsack known" `Quick test_knapsack_known;
          Alcotest.test_case "infeasible" `Quick test_ilp_infeasible;
          Alcotest.test_case "unbounded typed" `Quick test_ilp_unbounded_typed;
          Alcotest.test_case "warm vs dense" `Quick test_ilp_warm_vs_dense ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_knapsack_matches_brute;
            prop_ilp_warm_matches_dense;
            prop_sandwich;
            prop_ilp_vs_opt ] ) ]
