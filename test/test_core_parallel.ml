(* Tests for the parallel-disk machinery: greedy baselines, exhaustive OPT,
   the synchronized LP (Lemma 3) and the rounding pipeline (Theorem 4). *)

let example2 () =
  Instance.parallel ~k:4 ~fetch_time:4 ~num_disks:2
    ~disk_of:[| 0; 0; 0; 0; 1; 1; 1 |]
    ~initial_cache:[ 0; 1; 4; 5 ]
    [| 0; 1; 4; 5; 2; 6; 3 |]

let example1 () =
  Instance.single_disk ~k:4 ~fetch_time:4 ~initial_cache:[ 0; 1; 2; 3 ]
    [| 0; 1; 2; 3; 3; 4; 0; 3; 3; 1 |]

(* ------------------------------------------------------------------ *)
(* Anchors. *)

let test_example2_opt_is_3 () =
  Alcotest.(check int) "opt stall" 3 (Opt_parallel.solve_stall (example2 ()))

let test_example2_theorem4 () =
  let inst = example2 () in
  let r = Rounding.solve inst in
  let opt = Opt_parallel.solve_stall inst in
  Alcotest.(check bool)
    (Printf.sprintf "rounded stall %d <= opt %d" r.Rounding.stats.Simulate.stall_time opt)
    true
    (r.Rounding.stats.Simulate.stall_time <= opt);
  Alcotest.(check bool) "lp value <= opt" true (Rat.le r.Rounding.lp_value (Rat.of_int opt));
  Alcotest.(check bool) "no fallback" true (not r.Rounding.used_fallback);
  Alcotest.(check bool)
    (Printf.sprintf "peak %d <= k + 2(D-1) = %d" r.Rounding.stats.Simulate.peak_occupancy
       (inst.Instance.cache_size + 2))
    true
    (r.Rounding.stats.Simulate.peak_occupancy <= inst.Instance.cache_size + 2)

let test_single_disk_lp_exact () =
  (* With D = 1 there are no extra locations (2(D-1) = 0) and the LP
     pipeline must reproduce the exact single-disk optimum. *)
  let inst = example1 () in
  let r = Rounding.solve inst in
  Alcotest.(check int) "rounded = opt = 1" 1 r.Rounding.stats.Simulate.stall_time;
  Alcotest.(check bool) "lp value = 1" true (Rat.equal r.Rounding.lp_value Rat.one);
  Alcotest.(check bool) "no extra slots" true
    (r.Rounding.stats.Simulate.peak_occupancy <= inst.Instance.cache_size)

(* ------------------------------------------------------------------ *)
(* Generators. *)

let gen_parallel_instance =
  QCheck2.Gen.(
    let* d = int_range 1 3 in
    let* nblocks = int_range (2 * d) 6 in
    let* n = int_range 2 8 in
    let* seq = array_size (return n) (int_range 0 (nblocks - 1)) in
    let* k = int_range 2 4 in
    let* f = int_range 1 3 in
    let* layout_kind = int_range 0 2 in
    let num_blocks = Array.fold_left Stdlib.max 0 seq + 1 in
    let disk_of =
      match layout_kind with
      | 0 -> Workload.striped_layout ~num_blocks ~num_disks:d
      | 1 -> Workload.partitioned_layout ~num_blocks ~num_disks:d
      | _ -> Workload.random_layout ~seed:(n + nblocks + k) ~num_blocks ~num_disks:d
    in
    let init = Instance.warm_initial_cache ~k seq in
    return (Instance.parallel ~k ~fetch_time:f ~num_disks:d ~disk_of ~initial_cache:init seq))

(* Greedy baselines always emit valid schedules and never beat OPT. *)
let prop_greedy_valid_and_dominated =
  QCheck2.Test.make ~count:150 ~name:"greedy baselines valid, >= OPT" gen_parallel_instance
    (fun inst ->
       let opt = Opt_parallel.solve_stall inst in
       let ga = Parallel_greedy.aggressive_stall inst in
       let gc = Parallel_greedy.conservative_stall inst in
       ga >= opt && gc >= opt)

(* Theorem 4: the LP pipeline's stall never exceeds the no-extra-slots
   optimum, and it uses at most 2(D-1) extra locations. *)
let prop_theorem4 =
  QCheck2.Test.make ~count:60 ~name:"Theorem 4: rounded <= OPT, extra <= 2(D-1)"
    gen_parallel_instance
    (fun inst ->
       let r = Rounding.solve inst in
       let opt = Opt_parallel.solve_stall inst in
       let stall = r.Rounding.stats.Simulate.stall_time in
       let peak_ok =
         r.Rounding.stats.Simulate.peak_occupancy
         <= inst.Instance.cache_size + (2 * (inst.Instance.num_disks - 1))
       in
       if r.Rounding.used_fallback then
         QCheck2.Test.fail_reportf "fallback triggered on %s" (Format.asprintf "%a" Instance.pp inst)
       else if stall > opt then
         QCheck2.Test.fail_reportf "rounded %d > opt %d on %s" stall opt
           (Format.asprintf "%a" Instance.pp inst)
       else if not peak_ok then
         QCheck2.Test.fail_reportf "peak %d too high on %s" r.Rounding.stats.Simulate.peak_occupancy
           (Format.asprintf "%a" Instance.pp inst)
       else true)

(* Lemma 3: the synchronized LP's value (with its D-1 padding slots) is a
   lower bound on the no-extra-slots optimum. *)
let prop_lemma3 =
  QCheck2.Test.make ~count:60 ~name:"Lemma 3: LP value <= OPT" gen_parallel_instance
    (fun inst ->
       let lp = Sync_lp.lower_bound inst in
       let opt = Opt_parallel.solve_stall inst in
       if Rat.le lp (Rat.of_int opt) then true
       else
         QCheck2.Test.fail_reportf "LP %s > opt %d on %s" (Rat.to_string lp) opt
           (Format.asprintf "%a" Instance.pp inst))

(* E12 (single-disk integrality): with D = 1, the exact LP optimum equals
   the combinatorial optimum - the integrality property of
   Albers-Garg-Leonardi that the paper's Section 3 builds on. *)
let gen_single_instance =
  QCheck2.Gen.(
    let* nblocks = int_range 2 6 in
    let* n = int_range 2 10 in
    let* seq = array_size (return n) (int_range 0 (nblocks - 1)) in
    let* k = int_range 1 4 in
    let* f = int_range 1 4 in
    let init = Instance.warm_initial_cache ~k seq in
    return (Instance.single_disk ~k ~fetch_time:f ~initial_cache:init seq))

let prop_single_disk_lp_integral =
  QCheck2.Test.make ~count:60 ~name:"D=1: LP value = combinatorial OPT" gen_single_instance
    (fun inst ->
       let lp = Sync_lp.lower_bound inst in
       let opt = Opt_single.stall_time inst in
       if Rat.equal lp (Rat.of_int opt) then true
       else
         QCheck2.Test.fail_reportf "LP %s <> opt %d on %s" (Rat.to_string lp) opt
           (Format.asprintf "%a" Instance.pp inst))

let prop_single_disk_rounding_exact =
  QCheck2.Test.make ~count:60 ~name:"D=1: rounding recovers OPT with 0 extra slots"
    gen_single_instance
    (fun inst ->
       let r = Rounding.solve inst in
       let opt = Opt_single.stall_time inst in
       (not r.Rounding.used_fallback)
       && r.Rounding.stats.Simulate.stall_time = opt
       && r.Rounding.stats.Simulate.peak_occupancy <= inst.Instance.cache_size)

(* A solver that dies with a typed arithmetic-overflow error must land in
   the greedy fallback, not escape to the caller: the rounding pipeline
   treats exact-arithmetic overflow like any other recoverable solver
   failure. *)
let test_fallback_on_typed_overflow () =
  let inst = example2 () in
  List.iter
    (fun (label, solver) ->
       let r = Rounding.solve ~solver inst in
       Alcotest.(check bool) (label ^ ": used fallback") true r.Rounding.used_fallback;
       Alcotest.(check bool) (label ^ ": schedule valid") true
         (Result.is_ok (Simulate.run ~extra_slots:2 inst r.Rounding.schedule)))
    [ ( "bigint overflow",
        fun _ -> ignore (Bigint.to_int (Bigint.mul (Bigint.of_int max_int) Bigint.two)); assert false );
      ( "rat non-integer",
        fun _ -> ignore (Rat.to_int_exn Rat.half); assert false ) ]

(* Sync_ilp maps the same typed errors to Internal_error instead of
   letting them escape raw; exercised via the exception constructors
   directly since its solver is not pluggable. *)

(* Opt_parallel with D = 1 agrees with the single-disk DP. *)
let prop_opt_parallel_d1 =
  QCheck2.Test.make ~count:80 ~name:"Opt_parallel(D=1) = Opt_single" gen_single_instance
    (fun inst -> Opt_parallel.solve_stall inst = Opt_single.stall_time inst)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_greedy_valid_and_dominated; prop_theorem4; prop_lemma3;
      prop_single_disk_lp_integral; prop_single_disk_rounding_exact; prop_opt_parallel_d1 ]

let () =
  Alcotest.run "core-parallel"
    [ ( "anchors",
        [ Alcotest.test_case "example 2 opt = 3" `Quick test_example2_opt_is_3;
          Alcotest.test_case "example 2 theorem 4" `Quick test_example2_theorem4;
          Alcotest.test_case "single-disk LP exact" `Quick test_single_disk_lp_exact;
          Alcotest.test_case "typed overflow -> greedy fallback" `Quick
            test_fallback_on_typed_overflow ] );
      ("properties", props) ]
