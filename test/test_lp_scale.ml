(* PR-9 acceptance pin: the pruned synchronized LP plus the sparse
   revised solver must push the full Sync_lp -> Rounding pipeline to
   >= 1000 candidate intervals on >= 4 disks inside the CI budget, and
   the sparse solver must agree with the retained dense solver on the
   exact Sync_lp tableaux it replaced it on. *)

module R = Rat

let rt = Alcotest.testable R.pp R.equal

let zipf = List.find (fun f -> f.Workload.name = "zipf") Workload.families

(* n=220, 8 blocks, k=6, F=4, D=4 striped: 1090 candidate intervals,
   ~15k variables after pruning. *)
let acceptance_instance () =
  let seq = zipf.Workload.generate ~seed:1 ~n:220 ~num_blocks:8 in
  Workload.parallel_instance ~k:6 ~fetch_time:4 ~num_disks:4
    ~layout:(fun ~num_blocks ~num_disks -> Workload.striped_layout ~num_blocks ~num_disks)
    seq

let test_scale_pipeline () =
  let inst = acceptance_instance () in
  let built = Sync_lp.build inst in
  let n_intervals = Array.length built.Sync_lp.intervals in
  Alcotest.(check bool)
    (Printf.sprintf "acceptance size: %d intervals >= 1000" n_intervals)
    true (n_intervals >= 1000);
  Alcotest.(check bool) "D >= 4" true (inst.Instance.num_disks >= 4);
  let r = Rounding.solve inst in
  Alcotest.(check bool) "rounded, not fallback" false r.Rounding.used_fallback;
  Alcotest.(check bool) "laminar support" true r.Rounding.laminar;
  (* Theorem 4 at scale: the rounded schedule realizes the LP optimum. *)
  Alcotest.check rt "stall = LP optimum"
    r.Rounding.lp_value
    (R.of_int r.Rounding.stats.Simulate.stall_time)

(* Sparse-vs-dense on real Sync_lp tableaux small enough for the dense
   O(rows x cols) solver: byte-equal objectives. *)
let test_sync_corpus_sparse_vs_dense () =
  let cases =
    [ ("uniform D=2", "uniform", 24, 6, 4, 3, 2);
      ("zipf D=4", "zipf", 20, 8, 3, 2, 4);
      ("scan D=3", "scan", 18, 6, 2, 3, 3) ]
  in
  List.iter
    (fun (label, fam, n, blocks, k, f, d) ->
       let fam = List.find (fun w -> w.Workload.name = fam) Workload.families in
       let seq = fam.Workload.generate ~seed:7 ~n ~num_blocks:blocks in
       let inst =
         Workload.parallel_instance ~k ~fetch_time:f ~num_disks:d
           ~layout:(fun ~num_blocks ~num_disks ->
             Workload.striped_layout ~num_blocks ~num_disks)
           seq
       in
       let built = Sync_lp.build inst in
       let p = built.Sync_lp.problem in
       match (Simplex.solve_exact p, Revised.solve_lp p) with
       | ( Lp_problem.Optimal { objective_value = v1; _ },
           Lp_problem.Optimal { objective_value = v2; values } ) ->
         Alcotest.check rt (label ^ ": dense = sparse objective") v1 v2;
         Alcotest.(check bool)
           (label ^ ": sparse optimum feasible") true
           (Result.is_ok (Lp_problem.check_feasible p values))
       | _ -> Alcotest.fail (label ^ ": expected optimal from both"))
    cases

let () =
  Alcotest.run "lp_scale"
    [ ( "scale",
        [ Alcotest.test_case "pipeline at 1090 intervals, D=4" `Quick test_scale_pipeline;
          Alcotest.test_case "sparse = dense on Sync_lp corpus" `Quick
            test_sync_corpus_sparse_vs_dense ] ) ]
