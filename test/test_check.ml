(* Tests for the conformance harness itself (lib/check): generator
   determinism and validity, shrinker soundness, a healthy battery run,
   and the planted-bug self-test with its shrunk-size acceptance bound. *)

(* ------------------------------------------------------------------ *)
(* Generation. *)

(* Case i is a pure function of (seed, i): regenerating gives the same
   instance, and every generated instance passes Instance's own
   validation (construction raises on malformed parameters). *)
let test_generator_deterministic_and_valid () =
  List.iter
    (fun seed ->
      for index = 0 to 120 do
        let c1 = Ck_gen.generate ~seed ~index in
        let c2 = Ck_gen.generate ~seed ~index in
        Alcotest.(check string)
          (Printf.sprintf "descr stable (seed %d case %d)" seed index)
          c1.Ck_gen.descr c2.Ck_gen.descr;
        if not (c1.Ck_gen.inst = c2.Ck_gen.inst) then
          Alcotest.failf "seed %d case %d not reproducible" seed index;
        let inst = c1.Ck_gen.inst in
        (* basic structural sanity of what the generator claims to emit *)
        Alcotest.(check bool) "non-empty" true (Instance.length inst > 0);
        Alcotest.(check bool) "k positive" true (inst.Instance.cache_size >= 1);
        Alcotest.(check bool) "F positive" true (inst.Instance.fetch_time >= 1);
        Alcotest.(check bool) "init fits cache" true
          (List.length inst.Instance.initial_cache <= inst.Instance.cache_size)
      done)
    [ 0; 42; 1337 ]

let test_generator_tiers_cycle () =
  let tiers = List.init 9 (fun index -> (Ck_gen.generate ~seed:7 ~index).Ck_gen.tier) in
  Alcotest.(check bool) "tiers cycle tiny/single/parallel" true
    (tiers
     = [ Ck_gen.Tiny; Ck_gen.Single; Ck_gen.Parallel; Ck_gen.Tiny; Ck_gen.Single;
         Ck_gen.Parallel; Ck_gen.Tiny; Ck_gen.Single; Ck_gen.Parallel ])

let test_generator_single_disk_only () =
  for index = 0 to 60 do
    let c = Ck_gen.generate_single_disk ~seed:42 ~index in
    Alcotest.(check int)
      (Printf.sprintf "case %d is single-disk" index)
      1 c.Ck_gen.inst.Instance.num_disks
  done

(* ------------------------------------------------------------------ *)
(* Shrinking. *)

(* Every shrink candidate is a valid instance no larger than its parent. *)
let test_shrink_candidates_valid () =
  for index = 0 to 30 do
    let inst = (Ck_gen.generate ~seed:11 ~index).Ck_gen.inst in
    Seq.iter
      (fun (c : Instance.t) ->
        Alcotest.(check bool) "candidate no longer" true
          (Instance.length c <= Instance.length inst);
        Alcotest.(check bool) "candidate k bounded" true (c.Instance.cache_size <= inst.Instance.cache_size);
        (* disk map consistent with its own num_disks *)
        Array.iter
          (fun d ->
            Alcotest.(check bool) "disk in range" true (d >= 0 && d < c.Instance.num_disks))
          c.Instance.disk_of)
      (Ck_shrink.candidates inst)
  done

(* minimize only ever returns an instance on which the oracle still
   fails, and never a larger one than it started with. *)
let test_minimize_sound () =
  (* oracle: fails iff the sequence references block 0 at least twice *)
  let check (inst : Instance.t) =
    let hits = Array.fold_left (fun acc b -> if b = 0 then acc + 1 else acc) 0 inst.Instance.seq in
    if hits >= 2 then Ck_oracle.failf "block 0 referenced %d times" hits else Ck_oracle.Pass
  in
  let tried = ref 0 in
  for index = 0 to 60 do
    let inst = (Ck_gen.generate ~seed:5 ~index).Ck_gen.inst in
    match check inst with
    | Ck_oracle.Pass | Ck_oracle.Skip _ -> ()
    | Ck_oracle.Fail _ as first ->
      incr tried;
      let shrunk, outcome, evals = Ck_shrink.minimize ~max_evals:300 ~check inst first in
      Alcotest.(check bool) "shrunk still fails" true (Ck_oracle.is_fail outcome);
      Alcotest.(check bool) "no larger" true (Instance.length shrunk <= Instance.length inst);
      Alcotest.(check bool) "budget respected" true (evals <= 300);
      (* this oracle's minimal failing instances have exactly 2 requests *)
      Alcotest.(check bool)
        (Printf.sprintf "near-minimal (%d requests)" (Instance.length shrunk))
        true
        (Instance.length shrunk <= 3)
  done;
  Alcotest.(check bool) "property exercised" true (!tried > 5)

(* ------------------------------------------------------------------ *)
(* The battery on healthy implementations. *)

let test_battery_healthy () =
  let cfg =
    { Ck_runner.default_config with Ck_runner.seed = 42; cases = 60; dump_dir = None }
  in
  let summary = Ck_runner.run cfg in
  Alcotest.(check int) "cases run" 60 summary.Ck_runner.cases_run;
  Alcotest.(check bool) "many checks" true (summary.Ck_runner.checks >= 60 * 10);
  if Ck_runner.failed summary then
    Alcotest.failf "healthy battery failed:@\n%a" Ck_runner.pp_summary summary;
  (* every oracle class must actually have fired (not all skipped) *)
  List.iter
    (fun (oracle, counts) ->
      if counts.Ck_runner.pass = 0 then
        Alcotest.failf "oracle %s never passed in 60 cases" oracle.Ck_oracle.name)
    summary.Ck_runner.per_oracle

(* ------------------------------------------------------------------ *)
(* Planted bugs. *)

let test_selftest_catches_planted_bugs () =
  match Ck_selftest.run ~seed:42 ~max_cases:500 with
  | Error e -> Alcotest.fail e
  | Ok findings ->
    Alcotest.(check int) "two planted bugs" 2 (List.length findings);
    List.iter
      (fun (f : Ck_selftest.finding) ->
        let n = Instance.length f.Ck_selftest.shrunk in
        Alcotest.(check bool)
          (Printf.sprintf "%s: shrunk to %d <= 12 requests" f.Ck_selftest.oracle_name n)
          true (n <= 12))
      findings

(* The broken scheduler really is broken (and the harness is not just
   rubber-stamping): on the instance families it targets it must stall
   more than real Aggressive somewhere. *)
let test_planted_bug_is_worse () =
  let worse = ref false in
  (try
     for index = 0 to 200 do
       let inst = (Ck_gen.generate_single_disk ~seed:1 ~index).Ck_gen.inst in
       let stall sched =
         match Simulate.run inst sched with Ok s -> Some s.Simulate.stall_time | Error _ -> None
       in
       match (stall (Ck_selftest.broken_aggressive_schedule inst), stall (Aggressive.schedule inst)) with
       | Some b, Some a when b > a ->
         worse := true;
         raise Exit
       | _ -> ()
     done
   with Exit -> ());
  Alcotest.(check bool) "broken aggressive stalls more somewhere" true !worse

let () =
  Alcotest.run "check"
    [ ( "generator",
        [ Alcotest.test_case "deterministic and valid" `Quick test_generator_deterministic_and_valid;
          Alcotest.test_case "tiers cycle" `Quick test_generator_tiers_cycle;
          Alcotest.test_case "single-disk variant" `Quick test_generator_single_disk_only ] );
      ( "shrinker",
        [ Alcotest.test_case "candidates valid" `Quick test_shrink_candidates_valid;
          Alcotest.test_case "minimize sound" `Quick test_minimize_sound ] );
      ( "battery",
        [ Alcotest.test_case "healthy run has no failures" `Slow test_battery_healthy ] );
      ( "self-test",
        [ Alcotest.test_case "planted bugs caught and shrunk" `Slow test_selftest_catches_planted_bugs;
          Alcotest.test_case "planted bug is genuinely worse" `Quick test_planted_bug_is_worse ] ) ]
