(* Tests for the LP substrate: problem construction, the exact simplex, the
   float simplex, and the hybrid certified driver. *)

module P = Lp_problem
module R = Rat

let rt = Alcotest.testable R.pp R.equal

let r = R.of_ints

(* Build a problem from plain int data for readability:
   [vars] = number of variables, [obj] = (var, coeff) list,
   rows = (coeffs, relation, rhs). *)
let make_problem ?(direction = P.Minimize) vars obj rows =
  let b = P.Builder.create ~direction () in
  for i = 0 to vars - 1 do
    ignore (P.Builder.add_var b (Printf.sprintf "x%d" i))
  done;
  P.Builder.set_objective b (List.map (fun (v, c) -> (v, R.of_int c)) obj);
  List.iter
    (fun (coeffs, rel, rhs) ->
       P.Builder.add_row b (List.map (fun (v, c) -> (v, R.of_int c)) coeffs) rel (R.of_int rhs))
    rows;
  P.Builder.freeze b

let get_optimal = function
  | P.Optimal { objective_value; values } -> (objective_value, values)
  | P.Infeasible -> Alcotest.fail "unexpected: infeasible"
  | P.Unbounded -> Alcotest.fail "unexpected: unbounded"

let solvers =
  [ ("exact", Simplex.solve_pure_exact);
    ("hybrid", Simplex.solve_exact);
    ("revised", Revised.solve_lp);
    ("revised-pure", Revised.solve_pure) ]

let check_all_solvers name problem expected_obj expected_values =
  List.iter
    (fun (sname, solve) ->
       let obj, values = get_optimal (solve problem) in
       Alcotest.check rt (Printf.sprintf "%s/%s objective" name sname) expected_obj obj;
       match expected_values with
       | None -> ()
       | Some ev ->
         Alcotest.(check (list string))
           (Printf.sprintf "%s/%s values" name sname)
           (List.map R.to_string ev)
           (Array.to_list (Array.map R.to_string values)))
    solvers

(* ------------------------------------------------------------------ *)

(* max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (classic Dantzig):
   optimum 36 at (2, 6). *)
let test_classic_max () =
  let p =
    make_problem ~direction:P.Maximize 2
      [ (0, 3); (1, 5) ]
      [ ([ (0, 1) ], P.Le, 4); ([ (1, 2) ], P.Le, 12); ([ (0, 3); (1, 2) ], P.Le, 18) ]
  in
  check_all_solvers "classic" p (R.of_int 36) (Some [ R.of_int 2; R.of_int 6 ])

(* min x + y s.t. x + 2y >= 4, 3x + y >= 6: optimum at intersection
   (8/5, 6/5), value 14/5. *)
let test_min_ge () =
  let p =
    make_problem 2
      [ (0, 1); (1, 1) ]
      [ ([ (0, 1); (1, 2) ], P.Ge, 4); ([ (0, 3); (1, 1) ], P.Ge, 6) ]
  in
  check_all_solvers "min-ge" p (r 14 5) (Some [ r 8 5; r 6 5 ])

(* Equality constraints: min 2x + 3y s.t. x + y = 10, x - y <= 2.
   Optimal: push x up to its cap: x - y = 2 with x + y = 10 -> (6, 4),
   value 24. *)
let test_equality () =
  let p =
    make_problem 2
      [ (0, 2); (1, 3) ]
      [ ([ (0, 1); (1, 1) ], P.Eq, 10); ([ (0, 1); (1, -1) ], P.Le, 2) ]
  in
  check_all_solvers "equality" p (R.of_int 24) (Some [ R.of_int 6; R.of_int 4 ])

let test_infeasible () =
  let p =
    make_problem 1 [ (0, 1) ]
      [ ([ (0, 1) ], P.Le, 1); ([ (0, 1) ], P.Ge, 2) ]
  in
  List.iter
    (fun (sname, solve) ->
       match solve p with
       | P.Infeasible -> ()
       | _ -> Alcotest.fail (sname ^ ": expected infeasible"))
    solvers

let test_unbounded () =
  let p = make_problem ~direction:P.Maximize 1 [ (0, 1) ] [ ([ (0, 1) ], P.Ge, 1) ] in
  List.iter
    (fun (sname, solve) ->
       match solve p with
       | P.Unbounded -> ()
       | _ -> Alcotest.fail (sname ^ ": expected unbounded"))
    solvers

(* Degenerate LP known to cycle under naive most-negative rule (Beale's
   example); Bland fallback must terminate. *)
let test_beale_cycling () =
  let b = P.Builder.create ~direction:P.Minimize () in
  let x1 = P.Builder.add_var b "x1" in
  let x2 = P.Builder.add_var b "x2" in
  let x3 = P.Builder.add_var b "x3" in
  let x4 = P.Builder.add_var b "x4" in
  P.Builder.set_objective b
    [ (x1, r (-3) 4); (x2, R.of_int 150); (x3, r (-1) 50); (x4, R.of_int 6) ];
  P.Builder.add_row b
    [ (x1, r 1 4); (x2, R.of_int (-60)); (x3, r (-1) 25); (x4, R.of_int 9) ]
    P.Le R.zero;
  P.Builder.add_row b
    [ (x1, r 1 2); (x2, R.of_int (-90)); (x3, r (-1) 50); (x4, R.of_int 3) ]
    P.Le R.zero;
  P.Builder.add_row b [ (x3, R.one) ] P.Le R.one;
  let p = P.Builder.freeze b in
  let obj, _ = get_optimal (Simplex.solve_pure_exact p) in
  Alcotest.check rt "beale optimum" (r (-1) 20) obj

(* Fractional vertex: min -(x+y) s.t. 2x + y <= 3, x + 2y <= 3 ->
   vertex (1,1); and with <= 2 rhs -> (2/3, 2/3). *)
let test_fractional_vertex () =
  let p =
    make_problem 2
      [ (0, -1); (1, -1) ]
      [ ([ (0, 2); (1, 1) ], P.Le, 2); ([ (0, 1); (1, 2) ], P.Le, 2) ]
  in
  check_all_solvers "fractional" p (r (-4) 3) (Some [ r 2 3; r 2 3 ])

(* Redundant equality rows exercise the artificial-driving path. *)
let test_redundant_rows () =
  let p =
    make_problem 2
      [ (0, 1); (1, 2) ]
      [ ([ (0, 1); (1, 1) ], P.Eq, 4);
        ([ (0, 2); (1, 2) ], P.Eq, 8);  (* same hyperplane *)
        ([ (0, 1) ], P.Le, 3) ]
  in
  check_all_solvers "redundant" p (R.of_int 5) (Some [ R.of_int 3; R.of_int 1 ])

let test_zero_objective () =
  (* Pure feasibility problem. *)
  let p = make_problem 2 [] [ ([ (0, 1); (1, 1) ], P.Eq, 5) ] in
  List.iter
    (fun (sname, solve) ->
       match solve p with
       | P.Optimal { objective_value; values } ->
         Alcotest.check rt (sname ^ " obj") R.zero objective_value;
         Alcotest.check rt (sname ^ " sum")
           (R.of_int 5) (R.add values.(0) values.(1))
       | _ -> Alcotest.fail (sname ^ ": expected optimal"))
    solvers

let test_duplicate_coeffs_merged () =
  (* The builder must merge duplicate variable entries in a row. *)
  let b = P.Builder.create () in
  let x = P.Builder.add_var b "x" in
  P.Builder.set_objective b [ (x, R.one) ];
  P.Builder.add_row b [ (x, R.one); (x, R.one) ] P.Ge (R.of_int 4);
  let p = P.Builder.freeze b in
  let obj, values = get_optimal (Simplex.solve_pure_exact p) in
  Alcotest.check rt "merged row obj" (R.of_int 2) obj;
  Alcotest.check rt "merged row x" (R.of_int 2) values.(0)

let test_check_feasible () =
  let p =
    make_problem 2 [ (0, 1) ]
      [ ([ (0, 1); (1, 1) ], P.Le, 3); ([ (0, 1) ], P.Ge, 1) ]
  in
  Alcotest.(check bool) "feasible point" true
    (Result.is_ok (P.check_feasible p [| R.one; R.one |]));
  Alcotest.(check bool) "violates row" true
    (Result.is_error (P.check_feasible p [| R.of_int 5; R.zero |]));
  Alcotest.(check bool) "negative var" true
    (Result.is_error (P.check_feasible p [| R.of_int 2; R.of_int (-1) |]))

(* ------------------------------------------------------------------ *)
(* Revised-simplex specifics: the Bland switch, and the process-global
   statistics counters' snapshot/reset protocol. *)

(* min -x1 s.t. x1 - x2 <= 0, x1 <= 1: the first pivot is forced
   degenerate (ratio 0 on the first row), so with a zero stall threshold
   the very next pricing round must go through Bland. *)
let test_revised_bland_pin () =
  let p =
    make_problem 2 [ (0, -1) ]
      [ ([ (0, 1); (1, -1) ], P.Le, 0); ([ (0, 1) ], P.Le, 1) ]
  in
  let s0 = Simplex.stats_snapshot () in
  (match Revised.Rat_rev.solve ~stall_threshold:0 p with
   | Revised.Rat_rev.Solved { objective; _ } ->
     Alcotest.check rt "degenerate optimum" (R.of_int (-1)) objective
   | _ -> Alcotest.fail "expected solved");
  let d = Simplex.stats_since s0 in
  Alcotest.(check bool) "bland switch recorded" true (d.Simplex.bland_switches > 0);
  Alcotest.(check bool) "degenerate pivot recorded" true (d.Simplex.degenerate_pivots > 0)

let test_stats_snapshot_reset () =
  let p =
    make_problem 2 [ (0, 1); (1, 1) ]
      [ ([ (0, 1); (1, 2) ], P.Ge, 4); ([ (0, 3); (1, 1) ], P.Ge, 6) ]
  in
  let s0 = Simplex.stats_snapshot () in
  ignore (Revised.solve_lp p);
  let d = Simplex.stats_since s0 in
  Alcotest.(check bool) "snapshot delta sees the solve" true (d.Simplex.pivots > 0);
  (* The snapshot is a decoupled copy, so the delta is exactly the live
     total minus the snapshot... *)
  Alcotest.(check int) "delta = live - snapshot"
    (Simplex.stats.Simplex.pivots - s0.Simplex.pivots) d.Simplex.pivots;
  (* ...and reset rewinds the live record to zero. *)
  Simplex.stats_reset ();
  Alcotest.(check int) "reset pivots" 0 Simplex.stats.Simplex.pivots;
  Alcotest.(check int) "reset warm accepts" 0 Simplex.stats.Simplex.warm_accepts

(* ------------------------------------------------------------------ *)
(* Property tests: random small LPs; hybrid and pure-exact must agree
   exactly, and optimal solutions must be feasible. *)

let gen_lp =
  QCheck2.Gen.(
    let small_coeff = int_range (-5) 5 in
    let* nvars = int_range 1 5 in
    let* nrows = int_range 1 6 in
    let gen_row =
      let* coeffs = list_size (return nvars) small_coeff in
      let* rel = oneofl [ P.Le; P.Ge; P.Eq ] in
      let* rhs = int_range 0 20 in
      return (coeffs, rel, rhs)
    in
    let* rows = list_size (return nrows) gen_row in
    let* obj = list_size (return nvars) small_coeff in
    (* Bound the feasible region so the LP cannot be unbounded: add
       sum x_i <= 50. *)
    return (nvars, obj, rows))

let build_lp (nvars, obj, rows) =
  let b = P.Builder.create ~direction:P.Minimize () in
  let vars = List.init nvars (fun i -> P.Builder.add_var b (Printf.sprintf "x%d" i)) in
  P.Builder.set_objective b (List.mapi (fun i c -> (i, R.of_int c)) obj);
  List.iter
    (fun (coeffs, rel, rhs) ->
       P.Builder.add_row b (List.mapi (fun i c -> (i, R.of_int c)) coeffs) rel (R.of_int rhs))
    rows;
  P.Builder.add_row b (List.map (fun v -> (v, R.one)) vars) P.Le (R.of_int 50);
  P.Builder.freeze b

let prop_exact_hybrid_agree =
  QCheck2.Test.make ~count:300 ~name:"hybrid agrees with pure exact" gen_lp
    (fun spec ->
       let p = build_lp spec in
       match (Simplex.solve_pure_exact p, Simplex.solve_exact p) with
       | P.Optimal o1, P.Optimal o2 -> R.equal o1.objective_value o2.objective_value
       | P.Infeasible, P.Infeasible -> true
       | P.Unbounded, P.Unbounded -> true
       | _ -> false)

let prop_optimal_feasible =
  QCheck2.Test.make ~count:300 ~name:"optimal solutions are feasible" gen_lp
    (fun spec ->
       let p = build_lp spec in
       match Simplex.solve_exact p with
       | P.Optimal { objective_value; values } ->
         Result.is_ok (P.check_feasible p values)
         && R.equal objective_value (P.objective_value p values)
       | P.Infeasible | P.Unbounded -> true)

let prop_float_close =
  QCheck2.Test.make ~count:200 ~name:"float solver close to exact" gen_lp
    (fun spec ->
       let p = build_lp spec in
       match (Simplex.solve_pure_exact p, Simplex.solve_float p) with
       | P.Optimal o1, P.Optimal o2 ->
         Float.abs (R.to_float o1.objective_value -. R.to_float o2.objective_value) < 1e-4
       | P.Infeasible, P.Infeasible -> true
       | _, _ -> true (* float may legitimately misclassify edge cases *))

(* Differential suite for the tentpole: the sparse revised solver (both
   the hybrid float-then-certify driver and the pure exact variant) must
   agree with the retained dense solver byte-for-byte on objectives, and
   its optima must be basis-feasible for the original problem. *)
let prop_revised_matches_dense =
  QCheck2.Test.make ~count:300 ~name:"revised (hybrid + pure) = dense exact" gen_lp
    (fun spec ->
       let p = build_lp spec in
       let agree a b =
         match (a, b) with
         | ( P.Optimal { objective_value = v1; _ },
             P.Optimal { objective_value = v2; values } ) ->
           R.equal v1 v2
           && Result.is_ok (P.check_feasible p values)
           && R.equal v2 (P.objective_value p values)
         | P.Infeasible, P.Infeasible -> true
         | P.Unbounded, P.Unbounded -> true
         | _ -> false
       in
       let dense = Simplex.solve_pure_exact p in
       agree dense (Revised.solve_lp p) && agree dense (Revised.solve_pure p))

(* Standardize audit (satellite): raw problems built without the Builder,
   so rows may carry duplicate variable keys, negative right-hand sides
   (exercising the sign-flip row rewrite for every relation, Eq included)
   and surplus columns for Ge rows.  Both standardizers must induce the
   same optimum, and a solution mapped back through the revised path must
   satisfy the original rows. *)
let gen_raw_lp =
  QCheck2.Gen.(
    let small_coeff = int_range (-4) 4 in
    let* nvars = int_range 1 4 in
    let gen_entry =
      let* v = int_range 0 (nvars - 1) in
      let* c = small_coeff in
      return (v, R.of_int c)
    in
    let gen_row =
      let* entries = list_size (int_range 1 6) gen_entry in  (* duplicates likely *)
      let* rel = oneofl [ P.Le; P.Ge; P.Eq ] in
      let* rhs = int_range (-10) 10 in
      return { P.coeffs = entries; relation = rel; rhs = R.of_int rhs }
    in
    let* rows = list_size (int_range 1 5) gen_row in
    let* obj = list_size (return nvars) small_coeff in
    let cap =
      { P.coeffs = List.init nvars (fun v -> (v, R.one)); relation = P.Le; rhs = R.of_int 30 }
    in
    return
      { P.direction = P.Minimize;
        num_vars = nvars;
        objective = List.mapi (fun i c -> (i, R.of_int c)) obj;
        rows = cap :: rows;
        names = Array.init nvars (Printf.sprintf "x%d") })

(* check_feasible folds duplicate keys, so it is the ground truth both
   solvers are judged against. *)
let prop_standardize_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"standardize round-trip on raw duplicate-key rows"
    gen_raw_lp
    (fun p ->
       match (Simplex.solve_pure_exact p, Revised.solve_pure p) with
       | ( P.Optimal { objective_value = v1; values = x1 },
           P.Optimal { objective_value = v2; values = x2 } ) ->
         R.equal v1 v2
         && Result.is_ok (P.check_feasible p x1)
         && Result.is_ok (P.check_feasible p x2)
       | P.Infeasible, P.Infeasible -> true
       | P.Unbounded, P.Unbounded -> true
       | _ -> false)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_exact_hybrid_agree;
      prop_optimal_feasible;
      prop_float_close;
      prop_revised_matches_dense;
      prop_standardize_roundtrip ]

let () =
  Alcotest.run "simplex"
    [ ( "unit",
        [ Alcotest.test_case "classic max" `Quick test_classic_max;
          Alcotest.test_case "min with >=" `Quick test_min_ge;
          Alcotest.test_case "equality rows" `Quick test_equality;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "beale cycling" `Quick test_beale_cycling;
          Alcotest.test_case "fractional vertex" `Quick test_fractional_vertex;
          Alcotest.test_case "redundant rows" `Quick test_redundant_rows;
          Alcotest.test_case "zero objective" `Quick test_zero_objective;
          Alcotest.test_case "duplicate coeffs" `Quick test_duplicate_coeffs_merged;
          Alcotest.test_case "check_feasible" `Quick test_check_feasible;
          Alcotest.test_case "revised bland pin" `Quick test_revised_bland_pin;
          Alcotest.test_case "stats snapshot/reset" `Quick test_stats_snapshot_reset ] );
      ("properties", props) ]
