(* Tests for the delayed-hit executor (lib/disksim/delayed.ml) and its
   stochastic fetch-latency plans.

   The anchor property is the degenerate-plan contract: with window 0
   and degenerate timing (Faults.none, or a jitter-free Const F plan)
   the executor must produce stats structurally identical to
   Simulate.run on every schedule the classic executor accepts - the
   queueing machinery must cost the deterministic path nothing, not
   even a different event stream.  On top of that: hand-computed
   parking traces, the queueing invariants under random plans, the
   latency-distribution bounds, and the split-stream RNG hardening
   (adding a latency distribution never perturbs the jitter or failure
   draws). *)

let fetch = Fetch_op.make

let ok = function
  | Ok v -> v
  | Error (e : Simulate.error) ->
    Alcotest.failf "schedule rejected at t=%d: %s" e.Simulate.at_time e.Simulate.reason

(* ------------------------------------------------------------------ *)
(* Hand-computed parking traces.

   seq = [b0; b0], k = 1, F = 3, cold cache, one fetch of b0 at cursor
   0.  Classic: three stall units while the fetch lands, then two
   serves (stall 3, elapsed 5).  Window 1: r1 parks on the in-flight
   fetch (one delayed hit, residual 3), r2 stalls behind the full
   window (elapsed 4 = (2 - 1) + 3).  Window 2: both requests park and
   the run ends at the completion instant itself (elapsed 3 =
   (2 - 2) + 3), exercising the loop-exit guard that prevents a
   spurious trailing stall unit. *)

let tiny_inst = Instance.single_disk ~k:1 ~fetch_time:3 ~initial_cache:[] [| 0; 0 |]
let tiny_sched = [ fetch ~at_cursor:0 ~block:0 ~evict:None () ]

let check_tiny ~window ~stall ~elapsed ~hits ~wait ~depth =
  let d = ok (Delayed.run ~window tiny_inst tiny_sched) in
  Alcotest.(check int) "stall" stall d.Delayed.base.Simulate.stall_time;
  Alcotest.(check int) "elapsed" elapsed d.Delayed.base.Simulate.elapsed_time;
  Alcotest.(check int) "hits" hits d.Delayed.delayed_hits;
  Alcotest.(check int) "wait" wait d.Delayed.delayed_wait;
  Alcotest.(check int) "depth" depth d.Delayed.max_queue_depth;
  Alcotest.(check int) "waits length" hits (List.length d.Delayed.waits)

let test_window0_is_classic () =
  check_tiny ~window:0 ~stall:3 ~elapsed:5 ~hits:0 ~wait:0 ~depth:0;
  let s = ok (Simulate.run tiny_inst tiny_sched) in
  let d = ok (Delayed.run ~window:0 tiny_inst tiny_sched) in
  Alcotest.(check bool) "base stats structurally identical" true (d.Delayed.base = s)

let test_window1_parks_one () = check_tiny ~window:1 ~stall:3 ~elapsed:4 ~hits:1 ~wait:3 ~depth:1

let test_window2_parks_both () =
  check_tiny ~window:2 ~stall:3 ~elapsed:3 ~hits:2 ~wait:6 ~depth:2;
  (* The wait log records both requests parking at t=0, ready at t=3. *)
  let d = ok (Delayed.run ~window:2 tiny_inst tiny_sched) in
  List.iter
    (fun (w : Delayed.wait) ->
       Alcotest.(check int) "parked at 0" 0 w.Delayed.parked_at;
       Alcotest.(check int) "ready at 3" 3 w.Delayed.ready_at;
       Alcotest.(check int) "block 0" 0 w.Delayed.block)
    d.Delayed.waits

let test_elapsed_identity () =
  (* elapsed = (n - hits) + stall on a larger instance. *)
  let seq = Workload.zipf ~seed:5 ~alpha:0.9 ~n:40 ~num_blocks:10 in
  let inst = Workload.single_instance ~k:5 ~fetch_time:4 seq in
  let sched = Aggressive.schedule inst in
  List.iter
    (fun window ->
       let d = ok (Delayed.run ~window inst sched) in
       Alcotest.(check int)
         (Printf.sprintf "elapsed identity at window %d" window)
         (Instance.length inst - d.Delayed.delayed_hits + d.Delayed.base.Simulate.stall_time)
         d.Delayed.base.Simulate.elapsed_time)
    [ 0; 1; 4; 16 ]

let test_rejects_negative_window () =
  Alcotest.check_raises "window -1" (Invalid_argument "Delayed.run: window must be >= 0")
    (fun () -> ignore (Delayed.run ~window:(-1) tiny_inst tiny_sched))

let test_rejects_failure_plans () =
  let faults = Faults.make ~seed:3 ~fail_prob:0.5 () in
  (try
     ignore (Delayed.run ~faults tiny_inst tiny_sched);
     Alcotest.fail "failure plan accepted"
   with Faults.Invalid_plan _ -> ());
  let faults =
    Faults.make ~seed:3 ~outages:[ { Faults.disk = 0; from_time = 0; until_time = 2 } ] ()
  in
  try
    ignore (Delayed.run ~faults tiny_inst tiny_sched);
    Alcotest.fail "outage plan accepted"
  with Faults.Invalid_plan _ -> ()

(* ------------------------------------------------------------------ *)
(* Degenerate-plan oracle across the fuzz corpus: the same check the
   [delayed] fuzz class runs, pinned here over a fixed slice of the
   deterministic case generator so plain [dune runtest] covers it. *)

let test_degenerate_over_corpus () =
  for index = 0 to 79 do
    let case = Ck_gen.generate ~seed:7 ~index in
    match Ck_delayed.degenerate.Ck_oracle.check case.Ck_gen.inst with
    | Ck_oracle.Fail { msg; _ } ->
      Alcotest.failf "degenerate oracle failed on case %d (%s): %s" index case.Ck_gen.descr msg
    | Ck_oracle.Pass | Ck_oracle.Skip _ -> ()
  done

(* The PR-8 fast paths (heap-MIN Conservative, class-split Online)
   produce their schedules through new machinery; pin that the delayed
   executor's degenerate contract holds on exactly those plans too:
   window 0 with Faults.none AND with a jitter-free Const F plan must be
   structurally identical to Simulate.run, and the fast-engine plan must
   equal the reference-engine plan before either enters the executor. *)
let test_degenerate_on_fast_paths () =
  let fetch_time = 4 in
  let seq = Workload.zipf ~seed:21 ~alpha:0.9 ~n:300 ~num_blocks:24 in
  let inst = Workload.single_instance ~k:8 ~fetch_time seq in
  let const_f = Faults.make ~seed:1 ~latency:(Faults.Const fetch_time) () in
  List.iter
    (fun (name, schedule) ->
       let sched = schedule inst in
       let ref_sched = Driver.with_engine Driver.Reference (fun () -> schedule inst) in
       Alcotest.(check bool)
         (Printf.sprintf "%s: fast plan = reference plan" name)
         true (sched = ref_sched);
       (* Events + attribution on both sides: Delayed.run with a faults
          plan records them unconditionally, so the bare executor must
          too for the structural comparison to be meaningful. *)
       let s = ok (Simulate.run ~record_events:true ~attribution:true inst sched) in
       let d = ok (Delayed.run ~record_events:true ~attribution:true ~window:0 inst sched) in
       Alcotest.(check bool)
         (Printf.sprintf "%s: window-0 base = classic" name)
         true (d.Delayed.base = s);
       Alcotest.(check int) (Printf.sprintf "%s: no delayed hits" name) 0 d.Delayed.delayed_hits;
       let dc =
         ok (Delayed.run ~record_events:true ~attribution:true ~window:0 ~faults:const_f
               inst sched)
       in
       Alcotest.(check bool)
         (Printf.sprintf "%s: const-F plan = classic" name)
         true (dc.Delayed.base = s))
    [ ("conservative", Conservative.schedule);
      ("online(32)", Online.schedule (Online.aggressive ~lookahead:32));
      ("online(8,d2)", Online.schedule Online.{ lookahead = 8; delay = 2 });
      ("delay(d0)", Delay.schedule ~d:(Bounds.delay_opt_d ~f:fetch_time)) ]

let test_queueing_over_corpus () =
  for index = 0 to 39 do
    let case = Ck_gen.generate ~seed:11 ~index in
    match Ck_delayed.queueing.Ck_oracle.check case.Ck_gen.inst with
    | Ck_oracle.Fail { msg; _ } ->
      Alcotest.failf "queueing oracle failed on case %d (%s): %s" index case.Ck_gen.descr msg
    | Ck_oracle.Pass | Ck_oracle.Skip _ -> ()
  done

(* ------------------------------------------------------------------ *)
(* Latency distributions: draws respect the advertised supports. *)

let draw_durations faults ~fetch_time ~count =
  List.init count (fun i ->
      (Faults.draw faults ~fetch_time ~disk:(i mod 3) ~block:(i mod 7) ~attempt:1 ~start:i)
        .Faults.duration)

let test_latency_supports () =
  let within name lo hi ds =
    List.iter
      (fun d ->
         if d < lo || d > hi then
           Alcotest.failf "%s drew %d outside [%d, %d]" name d lo hi)
      ds
  in
  within "const" 6 6
    (draw_durations (Faults.make ~seed:1 ~latency:(Faults.Const 6) ()) ~fetch_time:4 ~count:64);
  let uni = draw_durations
      (Faults.make ~seed:2 ~latency:(Faults.Uniform { lo = 2; hi = 9 }) ())
      ~fetch_time:4 ~count:256
  in
  within "uniform" 2 9 uni;
  Alcotest.(check bool) "uniform spreads" true
    (List.exists (fun d -> d <> List.hd uni) uni);
  let par = draw_durations
      (Faults.make ~seed:3 ~latency:(Faults.Pareto { xm = 2; alpha = 1.3; cap = 32 }) ())
      ~fetch_time:4 ~count:256
  in
  within "pareto" 2 32 par;
  Alcotest.(check bool) "pareto spreads" true
    (List.exists (fun d -> d <> List.hd par) par);
  (* Planned keeps the instance's fetch time. *)
  within "planned" 4 4 (draw_durations (Faults.make ~seed:4 ()) ~fetch_time:4 ~count:16)

let test_latency_bounds_helpers () =
  let f = 4 in
  Alcotest.(check int) "max planned" f
    (Faults.max_latency (Faults.make ~seed:1 ()) ~fetch_time:f);
  Alcotest.(check int) "max uniform" 9
    (Faults.max_latency
       (Faults.make ~seed:1 ~latency:(Faults.Uniform { lo = 2; hi = 9 }) ())
       ~fetch_time:f);
  Alcotest.(check int) "max pareto = cap" 32
    (Faults.max_latency
       (Faults.make ~seed:1 ~latency:(Faults.Pareto { xm = 2; alpha = 1.3; cap = 32 }) ())
       ~fetch_time:f);
  (* Base distribution only: every executor adds [max_jitter] on top
     when sizing its horizon, so the two bounds stay composable. *)
  Alcotest.(check int) "max excludes jitter" 9
    (Faults.max_latency
       (Faults.make ~seed:1 ~jitter_prob:0.5 ~max_jitter:3
          ~latency:(Faults.Uniform { lo = 2; hi = 9 }) ())
       ~fetch_time:f);
  Alcotest.(check (float 1e-9)) "mean const" 6.0
    (Faults.mean_latency (Faults.make ~seed:1 ~latency:(Faults.Const 6) ()) ~fetch_time:f);
  Alcotest.(check (float 1e-9)) "mean uniform" 5.5
    (Faults.mean_latency
       (Faults.make ~seed:1 ~latency:(Faults.Uniform { lo = 2; hi = 9 }) ())
       ~fetch_time:f)

let test_invalid_latency_plans () =
  let rejects name f =
    try
      ignore (f ());
      Alcotest.failf "%s accepted" name
    with Faults.Invalid_plan _ -> ()
  in
  rejects "const 0" (fun () -> Faults.make ~seed:1 ~latency:(Faults.Const 0) ());
  rejects "uniform lo > hi" (fun () ->
      Faults.make ~seed:1 ~latency:(Faults.Uniform { lo = 5; hi = 4 }) ());
  rejects "uniform lo 0" (fun () ->
      Faults.make ~seed:1 ~latency:(Faults.Uniform { lo = 0; hi = 4 }) ());
  rejects "pareto alpha 0" (fun () ->
      Faults.make ~seed:1 ~latency:(Faults.Pareto { xm = 2; alpha = 0.0; cap = 8 }) ());
  rejects "pareto cap < xm" (fun () ->
      Faults.make ~seed:1 ~latency:(Faults.Pareto { xm = 8; alpha = 1.3; cap = 4 }) ())

(* ------------------------------------------------------------------ *)
(* Split-stream RNG hardening: each fault concern draws from its own
   hash-derived stream, so adding a latency distribution to a plan must
   not perturb the jitter or failure draws of unrelated concerns. *)

let test_latency_stream_independent_of_jitter () =
  (* Const F with F = fetch_time changes only the (degenerate) base; if
     the jitter stream were shared with the latency stream the extras
     would shift.  Durations must match Planned pointwise. *)
  let mk latency = Faults.make ~seed:42 ~jitter_prob:0.7 ~max_jitter:5 ?latency () in
  let planned = draw_durations (mk None) ~fetch_time:4 ~count:256 in
  let const = draw_durations (mk (Some (Faults.Const 4))) ~fetch_time:4 ~count:256 in
  Alcotest.(check (list int)) "jitter stream unperturbed" planned const

let test_failure_stream_independent_of_latency () =
  let flags faults =
    List.init 256 (fun i ->
        (Faults.draw faults ~fetch_time:4 ~disk:(i mod 3) ~block:(i mod 7) ~attempt:1 ~start:i)
          .Faults.failed)
  in
  let planned = flags (Faults.make ~seed:9 ~fail_prob:0.4 ()) in
  let uniform =
    flags (Faults.make ~seed:9 ~fail_prob:0.4 ~latency:(Faults.Uniform { lo = 2; hi = 9 }) ())
  in
  Alcotest.(check (list bool)) "failure stream unperturbed" planned uniform

let test_pinned_draws () =
  (* Regression pin: these exact values must never change - a different
     stream split or mixing constant is an observable break in every
     seeded experiment and fuzz artifact. *)
  let d faults = (draw_durations faults ~fetch_time:4 ~count:8 : int list) in
  Alcotest.(check (list int)) "planned + jitter"
    [ 9; 5; 7; 6; 5; 9; 4; 7 ]
    (d (Faults.make ~seed:42 ~jitter_prob:0.5 ~max_jitter:5 ()));
  Alcotest.(check (list int)) "uniform [2,9]"
    [ 6; 4; 7; 6; 3; 7; 6; 7 ]
    (d (Faults.make ~seed:42 ~latency:(Faults.Uniform { lo = 2; hi = 9 }) ()));
  Alcotest.(check (list int)) "pareto xm=2 a=1.3 cap=32"
    [ 3; 2; 4; 3; 2; 4; 3; 4 ]
    (d (Faults.make ~seed:42 ~latency:(Faults.Pareto { xm = 2; alpha = 1.3; cap = 32 }) ()))

(* ------------------------------------------------------------------ *)
(* Telemetry surface: the delayed-hit event serializes with the full
   queueing context. *)

let test_delayed_hit_event_json () =
  let j =
    Event_log.json_of_event
      (Event_log.Delayed_hit
         { time = 7; cursor = 3; block = 5; disk = 1; queue_depth = 2; residual = 4 })
  in
  let field k = Tjson.member k j in
  Alcotest.(check bool) "event tag" true (field "event" = Some (Tjson.String "delayed_hit"));
  List.iter
    (fun (k, v) ->
       Alcotest.(check bool) (Printf.sprintf "field %s" k) true (field k = Some (Tjson.Int v)))
    [ ("time", 7); ("cursor", 3); ("block", 5); ("disk", 1); ("queue_depth", 2);
      ("residual", 4) ];
  (* And the whole line round-trips through the strict parser. *)
  match Tjson.of_string (Tjson.to_string j) with
  | Ok j' -> Alcotest.(check bool) "roundtrip" true (j = j')
  | Error e -> Alcotest.failf "emitted JSON does not parse: %s" e

(* ------------------------------------------------------------------ *)
(* Randomized sweep: queueing invariants under arbitrary latency plans
   and windows.  No starvation (every request served exactly once), the
   elapsed identity, the attribution partition, and the wait-log
   bijection. *)

let prop_delayed_invariants =
  QCheck2.Test.make ~count:120 ~name:"delayed executor invariants under random plans"
    ~print:(fun (seed, window, dist, conservative) ->
      Printf.sprintf "seed=%d window=%d dist=%d conservative=%b" seed window dist conservative)
    QCheck2.Gen.(tup4 (int_range 0 5000) (int_range 0 12) (int_range 0 2) bool)
    (fun (seed, window, dist, conservative) ->
       let latency =
         match dist with
         | 0 -> Faults.Const 4
         | 1 -> Faults.Uniform { lo = 2; hi = 8 }
         | _ -> Faults.Pareto { xm = 2; alpha = 1.3; cap = 16 }
       in
       let faults = Faults.make ~seed ~latency () in
       let seq = Workload.zipf ~seed:(seed + 1) ~alpha:0.9 ~n:40 ~num_blocks:10 in
       let inst = Workload.single_instance ~k:5 ~fetch_time:4 seq in
       let sched =
         if conservative then Conservative.schedule inst else Aggressive.schedule inst
       in
       let n = Instance.length inst in
       match Delayed.run ~record_events:true ~attribution:true ~window ~faults inst sched with
       | Error _ -> false  (* latency-only plans must never wedge a valid schedule *)
       | Ok d ->
         let s = d.Delayed.base in
         (* Every request served exactly once - no starvation, no double
            service. *)
         let served = Array.make n 0 in
         List.iter
           (function
             | Simulate.Serve { index; _ } -> served.(index) <- served.(index) + 1
             | _ -> ())
           s.Simulate.events;
         assert (Array.for_all (fun c -> c = 1) served);
         assert (s.Simulate.elapsed_time = n - d.Delayed.delayed_hits + s.Simulate.stall_time);
         let charged =
           List.fold_left
             (fun acc (fs : Simulate.fetch_stall) ->
                acc + fs.Simulate.involuntary_stall + fs.Simulate.voluntary_stall)
             0 s.Simulate.stall_by_fetch
         in
         assert (charged = s.Simulate.stall_time);
         (* Wait log in bijection with the hits, each within bounds. *)
         assert (List.length d.Delayed.waits = d.Delayed.delayed_hits);
         let max_residual = Faults.max_latency faults ~fetch_time:4 in
         List.iter
           (fun (w : Delayed.wait) ->
              assert (w.Delayed.ready_at - w.Delayed.parked_at >= 1);
              assert (w.Delayed.ready_at - w.Delayed.parked_at <= max_residual);
              assert (w.Delayed.queue_depth >= 1);
              assert (window = 0 || w.Delayed.queue_depth <= window))
           d.Delayed.waits;
         assert (
           List.fold_left (fun acc (w : Delayed.wait) -> acc + w.Delayed.ready_at - w.Delayed.parked_at)
             0 d.Delayed.waits
           = d.Delayed.delayed_wait);
         d.Delayed.delayed_hits = 0 || window > 0)

let () =
  Alcotest.run "delayed"
    [ ("parking",
       [ Alcotest.test_case "window 0 = classic" `Quick test_window0_is_classic;
         Alcotest.test_case "window 1 parks one" `Quick test_window1_parks_one;
         Alcotest.test_case "window 2 parks both (loop-exit guard)" `Quick
           test_window2_parks_both;
         Alcotest.test_case "elapsed identity" `Quick test_elapsed_identity;
         Alcotest.test_case "rejects negative window" `Quick test_rejects_negative_window;
         Alcotest.test_case "rejects failure plans" `Quick test_rejects_failure_plans ]);
      ("oracles",
       [ Alcotest.test_case "degenerate over corpus" `Slow test_degenerate_over_corpus;
         Alcotest.test_case "degenerate on PR-8 fast-path plans" `Quick
           test_degenerate_on_fast_paths;
         Alcotest.test_case "queueing over corpus" `Slow test_queueing_over_corpus ]);
      ("latency distributions",
       [ Alcotest.test_case "supports" `Quick test_latency_supports;
         Alcotest.test_case "bounds helpers" `Quick test_latency_bounds_helpers;
         Alcotest.test_case "invalid plans" `Quick test_invalid_latency_plans ]);
      ("rng hardening",
       [ Alcotest.test_case "latency stream independent of jitter" `Quick
           test_latency_stream_independent_of_jitter;
         Alcotest.test_case "failure stream independent of latency" `Quick
           test_failure_stream_independent_of_latency;
         Alcotest.test_case "pinned draws" `Quick test_pinned_draws ]);
      ("telemetry",
       [ Alcotest.test_case "delayed_hit event json" `Quick test_delayed_hit_event_json ]);
      ("properties", [ QCheck_alcotest.to_alcotest prop_delayed_invariants ]) ]
