(* Empirical validation of the Section-2 dominance framework, in particular
   the Domination Lemma (Lemma 1) that powers the Theorem-1 analysis. *)

let mk_instance seq k = Instance.single_disk ~k ~fetch_time:3 ~initial_cache:[] seq

(* A simple hand-checkable case. *)
let test_holes_basic () =
  let inst = mk_instance [| 0; 1; 2; 0; 3 |] 2 in
  (* cache {0,1}, cursor 0: missing {2,3}; first refs at 2 and 4. *)
  Alcotest.(check (list int)) "holes" [ 2; 4 ]
    (Dominance.holes inst { Dominance.cursor = 0; cache = [ 0; 1 ] });
  (* cache {2,3}, cursor 0: missing {0,1}; first refs at 0 and 1. *)
  Alcotest.(check (list int)) "holes earlier" [ 0; 1 ]
    (Dominance.holes inst { Dominance.cursor = 0; cache = [ 2; 3 ] })

let test_dominates_basic () =
  let inst = mk_instance [| 0; 1; 2; 0; 3 |] 2 in
  let a = { Dominance.cursor = 1; cache = [ 0; 1 ] } in
  let b = { Dominance.cursor = 0; cache = [ 2; 3 ] } in
  Alcotest.(check bool) "a dominates b" true (Dominance.dominates inst a b);
  Alcotest.(check bool) "b does not dominate a" false (Dominance.dominates inst b a);
  Alcotest.(check bool) "reflexive" true (Dominance.dominates inst a a)

let test_greedy_step_none_when_no_miss () =
  let inst = mk_instance [| 0; 1; 0 |] 2 in
  Alcotest.(check bool) "no missing -> None" true
    (Dominance.greedy_fetch_step inst { Dominance.cursor = 0; cache = [ 0; 1 ] } = None)

(* Random configurations over a shared instance. *)
let gen_case =
  QCheck2.Gen.(
    let* nblocks = int_range 3 7 in
    let* n = int_range 3 20 in
    let* seq = array_size (return n) (int_range 0 (nblocks - 1)) in
    (* The instance's block universe is what actually appears in seq. *)
    let universe = Array.fold_left Stdlib.max 0 seq + 1 in
    let* k = int_range 1 (Stdlib.max 1 (universe - 1)) in
    let pick_cache st =
      (* a uniformly random k-subset of the universe *)
      let arr = Array.init universe (fun i -> i) in
      for i = universe - 1 downto 1 do
        let j = Random.State.int st (i + 1) in
        let t = arr.(i) in
        arr.(i) <- arr.(j);
        arr.(j) <- t
      done;
      Array.to_list (Array.sub arr 0 (Stdlib.min k universe))
    in
    let* cache_a = make_primitive ~gen:pick_cache ~shrink:(fun _ -> Seq.empty) in
    let* cache_b = make_primitive ~gen:pick_cache ~shrink:(fun _ -> Seq.empty) in
    let* ca = int_range 0 (n - 1) in
    let* cb = int_range 0 ca in
    return (mk_instance seq k, { Dominance.cursor = ca; cache = cache_a },
            { Dominance.cursor = cb; cache = cache_b }))

(* Lemma 1: domination is preserved by the greedy fetch step. *)
let prop_domination_lemma =
  QCheck2.Test.make ~count:2000 ~name:"Lemma 1: greedy step preserves domination" gen_case
    (fun (inst, a, b) ->
       QCheck2.assume (Dominance.dominates inst a b);
       match (Dominance.greedy_fetch_step inst a, Dominance.greedy_fetch_step inst b) with
       | Some a', Some b' ->
         if Dominance.dominates inst a' b' then true
         else
           QCheck2.Test.fail_reportf "domination broken on %s: %s |> %s vs %s |> %s"
             (Format.asprintf "%a" Instance.pp inst)
             (Format.asprintf "%a" Dominance.pp a)
             (Format.asprintf "%a" Dominance.pp a')
             (Format.asprintf "%a" Dominance.pp b)
             (Format.asprintf "%a" Dominance.pp b')
       | _ -> true (* lemma premise: both must be able to fetch *))

(* Dominance is a partial order on configurations (reflexive + transitive
   where defined). *)
let prop_dominates_transitive =
  QCheck2.Test.make ~count:1000 ~name:"dominance transitive"
    QCheck2.Gen.(triple gen_case (return ()) (return ()))
    (fun ((inst, a, b), (), ()) ->
       (* reuse a, b plus a's own holes shifted: a dominates itself *)
       Dominance.dominates inst a a
       && (not (Dominance.dominates inst a b && Dominance.dominates inst b a)
           || (Dominance.holes inst a = Dominance.holes inst b && a.Dominance.cursor = b.Dominance.cursor)))

(* Holes are antitone in the cache: adding one block to the cache removes
   exactly that block's hole (one occurrence of its next reference) and
   leaves the others untouched, so hole lists shrink pointwise. *)
let prop_holes_antitone =
  QCheck2.Test.make ~count:2000 ~name:"holes antitone in cache"
    QCheck2.Gen.(
      let* nblocks = int_range 2 7 in
      let* n = int_range 2 20 in
      let* seq = array_size (return n) (int_range 0 (nblocks - 1)) in
      let universe = Array.fold_left Stdlib.max 0 seq + 1 in
      let* cursor = int_range 0 (n - 1) in
      let* cache_bits = int_bound ((1 lsl universe) - 1) in
      return (seq, universe, cursor, cache_bits))
    (fun (seq, universe, cursor, cache_bits) ->
       let cache =
         List.filter (fun b -> cache_bits land (1 lsl b) <> 0)
           (List.init universe Fun.id)
       in
       let missing = List.filter (fun b -> not (List.mem b cache)) (List.init universe Fun.id) in
       QCheck2.assume (missing <> []);
       let added = List.nth missing (cursor mod List.length missing) in
       (* k is irrelevant to [holes]; any capacity accommodating the caches works *)
       let inst = Instance.single_disk ~k:universe ~fetch_time:3 ~initial_cache:[] seq in
       let h_small = Dominance.holes inst { Dominance.cursor; cache } in
       let h_big = Dominance.holes inst { Dominance.cursor; cache = added :: cache } in
       let nr = Next_ref.of_instance inst in
       let removed = Next_ref.next_at_or_after nr added cursor in
       let rec remove_one x = function
         | [] -> None
         | y :: tl when y = x -> Some tl
         | y :: tl -> Option.map (fun tl' -> y :: tl') (remove_one x tl)
       in
       match remove_one removed h_small with
       | Some expected -> h_big = expected
       | None ->
         QCheck2.Test.fail_reportf "hole %d for added block %d absent from %s" removed added
           (String.concat ";" (List.map string_of_int h_small)))

(* The normalization behind Opt_single prunes the candidate set to
   greedy-content schedules (next missing block, furthest-next-reference
   eviction, decision-point starts).  The pruned set must still contain an
   optimal schedule: the unrestricted exhaustive search never beats it. *)
let prop_pruning_retains_optimum =
  QCheck2.Test.make ~count:120 ~name:"pruned candidate set retains an optimum"
    QCheck2.Gen.(
      let* nblocks = int_range 2 6 in
      let* n = int_range 2 12 in
      let* seq = array_size (return n) (int_range 0 (nblocks - 1)) in
      let* k = int_range 1 4 in
      let* f = int_range 1 5 in
      let* warm = bool in
      let init = if warm then Instance.warm_initial_cache ~k seq else [] in
      return (Instance.single_disk ~k ~fetch_time:f ~initial_cache:init seq))
    (fun inst ->
       let pruned = Opt_single.stall_time inst in
       let free = Opt_exhaustive.solve_stall inst in
       if pruned = free then true
       else
         QCheck2.Test.fail_reportf "pruned %d vs exhaustive %d on %s" pruned free
           (Format.asprintf "%a" Instance.pp inst))

(* During an actual Aggressive run against itself started one fetch "ahead",
   the later state always dominates: a smoke check that the machinery plugs
   into real algorithm states. *)
let test_aggressive_self_domination () =
  let seq = Workload.sequential_scan ~n:30 ~num_blocks:8 in
  let inst = Workload.single_instance ~k:4 ~fetch_time:3 seq in
  let d = Driver.create inst in
  let prev = ref (Dominance.config_of_driver d) in
  let ok = ref true in
  while not (Driver.finished d) do
    Driver.tick_completions d;
    Aggressive.decide d;
    Driver.advance d;
    if not (Driver.any_disk_busy d) then begin
      let cur = Dominance.config_of_driver d in
      if List.length cur.Dominance.cache = List.length !prev.Dominance.cache then begin
        if not (Dominance.dominates inst cur !prev) then ok := false;
        prev := cur
      end
    end
  done;
  Alcotest.(check bool) "later states dominate earlier ones" true !ok

let () =
  Alcotest.run "dominance"
    [ ( "unit",
        [ Alcotest.test_case "holes" `Quick test_holes_basic;
          Alcotest.test_case "dominates" `Quick test_dominates_basic;
          Alcotest.test_case "no-miss step" `Quick test_greedy_step_none_when_no_miss;
          Alcotest.test_case "aggressive self-domination" `Quick test_aggressive_self_domination ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_domination_lemma; prop_dominates_transitive; prop_holes_antitone;
            prop_pruning_retains_optimum ] ) ]
