(* Tests for the disk-system executor, anchored on the two worked examples
   in the introduction of Albers & Buettner (2005):

   Example 1 (single disk): sigma = b1 b2 b3 b4 b4 b5 b1 b4 b4 b2, k = 4,
   F = 4, initial cache {b1..b4}.  The naive schedule stalls 3 units
   (elapsed 13); the better schedule stalls 1 unit (elapsed 11).

   Example 2 (two disks): b1..b4 on disk 1, c1..c3 on disk 2, k = 4, F = 4,
   sigma = b1 b2 c1 c2 b3 c3 b4, initial cache {b1, b2, c1, c2}: the
   schedule described in the paper stalls exactly 3 units. *)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec loop i = i + ln <= lh && (String.sub hay i ln = needle || loop (i + 1)) in
  loop 0

let fetch = Fetch_op.make

let ok_stats = function
  | Ok (s : Simulate.stats) -> s
  | Error (e : Simulate.error) ->
    Alcotest.failf "schedule rejected at t=%d: %s" e.Simulate.at_time e.Simulate.reason

let reject = function
  | Ok (_ : Simulate.stats) -> Alcotest.fail "schedule unexpectedly accepted"
  | Error (e : Simulate.error) -> e.Simulate.reason

(* Example 1: blocks b1..b5 are 0..4. *)
let example1 () =
  Instance.single_disk ~k:4 ~fetch_time:4 ~initial_cache:[ 0; 1; 2; 3 ]
    [| 0; 1; 2; 3; 3; 4; 0; 3; 3; 1 |]

let test_example1_naive () =
  let inst = example1 () in
  (* Fetch b5 at the request to b2 evicting b1; then fetch b1 back
     (evicting b3) as soon as the disk is free. *)
  let schedule =
    [ fetch ~at_cursor:1 ~block:4 ~evict:(Some 0) ();
      fetch ~at_cursor:5 ~block:0 ~evict:(Some 2) () ]
  in
  let s = ok_stats (Simulate.run ~record_events:true inst schedule) in
  Alcotest.(check int) "stall" 3 s.Simulate.stall_time;
  Alcotest.(check int) "elapsed" 13 s.Simulate.elapsed_time;
  Alcotest.(check int) "fetches" 2 s.Simulate.fetches_completed

let test_example1_better () =
  let inst = example1 () in
  (* Fetch b5 at the request to b3 evicting b2 (1 stall unit), then fetch
     b2 back without stall: start the moment the disk frees up (during the
     service of b5, i.e. anchor at cursor 5 with one unit of delay). *)
  let schedule =
    [ fetch ~at_cursor:2 ~block:4 ~evict:(Some 1) ();
      fetch ~at_cursor:5 ~delay:1 ~block:1 ~evict:(Some 2) () ]
  in
  let s = ok_stats (Simulate.run inst schedule) in
  Alcotest.(check int) "stall" 1 s.Simulate.stall_time;
  Alcotest.(check int) "elapsed" 11 s.Simulate.elapsed_time

let test_example1_no_fetch_deadlock () =
  let inst = example1 () in
  let reason = reject (Simulate.run inst []) in
  Alcotest.(check bool) "mentions missing block" true
    (String.length reason > 0)

(* Example 2: b1..b4 = blocks 0..3 on disk 0; c1..c3 = blocks 4..6 on disk 1. *)
let example2 () =
  Instance.parallel ~k:4 ~fetch_time:4 ~num_disks:2
    ~disk_of:[| 0; 0; 0; 0; 1; 1; 1 |]
    ~initial_cache:[ 0; 1; 4; 5 ]
    [| 0; 1; 4; 5; 2; 6; 3 |]

let test_example2_paper_schedule () =
  let inst = example2 () in
  let schedule =
    [ (* disk 1 fetches b3 at the request to b2, evicting b1 *)
      fetch ~at_cursor:1 ~disk:0 ~block:2 ~evict:(Some 0) ();
      (* disk 2 fetches c3 one request later, evicting b2 *)
      fetch ~at_cursor:2 ~disk:1 ~block:6 ~evict:(Some 1) ();
      (* disk 1 starts its second fetch (b4) at the request to b3, i.e. one
         unit after the cursor reached 4 (the stall unit), evicting c1 *)
      fetch ~at_cursor:4 ~delay:1 ~disk:0 ~block:3 ~evict:(Some 4) () ]
  in
  let s = ok_stats (Simulate.run ~record_events:true inst schedule) in
  Alcotest.(check int) "stall" 3 s.Simulate.stall_time;
  Alcotest.(check int) "elapsed" 10 s.Simulate.elapsed_time;
  Alcotest.(check int) "fetches" 3 s.Simulate.fetches_completed

let test_example2_parallel_overlap () =
  (* The two fetches overlap in time; the stall unit before b3 benefits the
     c3 fetch on the other disk (that is the point of the example). *)
  let inst = example2 () in
  let schedule =
    [ fetch ~at_cursor:1 ~disk:0 ~block:2 ~evict:(Some 0) ();
      fetch ~at_cursor:2 ~disk:1 ~block:6 ~evict:(Some 1) ();
      fetch ~at_cursor:4 ~delay:1 ~disk:0 ~block:3 ~evict:(Some 4) () ]
  in
  let s = ok_stats (Simulate.run ~record_events:true inst schedule) in
  (* c3 is served with no stall unit directly before it: check via events
     that no stall occurs at cursor position 5 (after b3 was served). *)
  let stall_times =
    List.filter_map
      (function Simulate.Stall { time } -> Some time | _ -> None)
      s.Simulate.events
  in
  Alcotest.(check (list int)) "stalls at t=4 (before b3) and t=7,8 (before b4)"
    [ 4; 7; 8 ] stall_times

(* ------------------------------------------------------------------ *)
(* Executor error detection. *)

let test_reject_busy_disk () =
  let inst = example1 () in
  let schedule =
    [ fetch ~at_cursor:1 ~block:4 ~evict:(Some 0) ();
      (* second fetch two time units later while the disk is still busy *)
      fetch ~at_cursor:3 ~block:0 ~evict:(Some 2) () ]
  in
  let reason = reject (Simulate.run inst schedule) in
  Alcotest.(check bool) "busy disk" true
    (contains reason "busy")

let test_reject_fetch_cached_block () =
  let inst = example1 () in
  let schedule = [ fetch ~at_cursor:0 ~block:0 ~evict:(Some 1) () ] in
  let reason = reject (Simulate.run inst schedule) in
  Alcotest.(check bool) "already in cache" true
    (contains reason "already in cache")

let test_reject_evict_absent () =
  let inst = example1 () in
  let schedule = [ fetch ~at_cursor:0 ~block:4 ~evict:(Some 4) () ] in
  ignore (reject (Simulate.run inst schedule))

(* The _exn wrappers must raise the typed exception (with the rejection's
   time step), not a bare Failure. *)
let test_exn_wrappers_raise_typed () =
  let inst = example1 () in
  let bad = [ fetch ~at_cursor:0 ~block:0 ~evict:(Some 1) () ] in
  let check_typed name f =
    match f () with
    | (_ : int) -> Alcotest.failf "%s accepted an invalid schedule" name
    | exception Simulate.Invalid_schedule { algorithm; at_time; reason } ->
      Alcotest.(check string) (name ^ " algorithm tag") "replay" algorithm;
      Alcotest.(check bool) (name ^ " at_time sane") true (at_time >= 0);
      Alcotest.(check bool) (name ^ " reason") true (contains reason "already in cache")
    | exception Failure _ -> Alcotest.failf "%s raised untyped Failure" name
  in
  check_typed "stall_time_exn" (fun () -> Simulate.stall_time_exn inst bad);
  check_typed "elapsed_time_exn" (fun () -> Simulate.elapsed_time_exn inst bad);
  (* The valid-schedule path is unchanged. *)
  Alcotest.(check int) "stall via exn wrapper" 3
    (Simulate.stall_time_exn inst
       [ fetch ~at_cursor:1 ~block:4 ~evict:(Some 0) ();
         fetch ~at_cursor:5 ~block:0 ~evict:(Some 2) () ])

let test_reject_capacity () =
  let inst = example1 () in
  (* Fetch without eviction into a full cache. *)
  let schedule = [ fetch ~at_cursor:0 ~block:4 ~evict:None () ] in
  let reason = reject (Simulate.run inst schedule) in
  Alcotest.(check bool) "capacity" true
    (contains reason "capacity")

let test_extra_slots_allow_overcommit () =
  let inst = example1 () in
  (* With one extra slot no eviction is needed: fetch b5 into the spare
     slot early and the whole sequence runs without stall. *)
  let schedule = [ fetch ~at_cursor:0 ~block:4 ~evict:None () ] in
  let s = ok_stats (Simulate.run ~extra_slots:1 inst schedule) in
  Alcotest.(check int) "zero stall" 0 s.Simulate.stall_time;
  Alcotest.(check int) "peak occupancy uses extra slot" 5 s.Simulate.peak_occupancy

let test_reject_wrong_disk () =
  let inst = example2 () in
  let schedule = [ fetch ~at_cursor:1 ~disk:1 ~block:2 ~evict:(Some 0) () ] in
  let reason = reject (Simulate.run inst schedule) in
  Alcotest.(check bool) "wrong disk" true
    (contains reason "lives on disk")

(* Regression: a schedule must not evict a block while that block's own
   fetch is still in flight.  The residency check happened to reject such
   schedules too (an in-flight block is not yet resident), but the
   executor now names the precise violation. *)
let evict_in_flight_instance () =
  (* blocks 0..2 on disk 0, block 3 on disk 1; k = 2 *)
  Instance.parallel ~k:2 ~fetch_time:4 ~num_disks:2
    ~disk_of:[| 0; 0; 0; 1 |] ~initial_cache:[ 0; 1 ]
    [| 0; 1; 2; 3 |]

let test_reject_evict_in_flight () =
  let inst = evict_in_flight_instance () in
  let schedule =
    [ (* disk 0 fetches b2 (completes at t=4)... *)
      fetch ~at_cursor:0 ~disk:0 ~block:2 ~evict:(Some 0) ();
      (* ...and disk 1 tries to evict b2 at t=1, mid-flight *)
      fetch ~at_cursor:0 ~delay:1 ~disk:1 ~block:3 ~evict:(Some 2) () ]
  in
  let reason = reject (Simulate.run inst schedule) in
  Alcotest.(check bool) "names the in-flight eviction" true
    (contains reason "in-flight fetch window");
  (* Driver.validate surfaces the same rejection as Invalid_schedule. *)
  match Driver.validate ~name:"bad" inst schedule with
  | (_ : Simulate.stats) -> Alcotest.fail "validate unexpectedly accepted"
  | exception Driver.Invalid_schedule { reason; _ } ->
    Alcotest.(check bool) "validate names the in-flight eviction" true
      (contains reason "in-flight fetch window")

let test_evict_at_completion_instant_ok () =
  (* Boundary: completions deposit before starts perform evictions, so
     evicting a block at the exact instant its fetch completes is legal. *)
  let inst =
    Instance.parallel ~k:2 ~fetch_time:2 ~num_disks:2
      ~disk_of:[| 0; 0; 0; 1 |] ~initial_cache:[ 0; 1 ]
      [| 0; 0; 3; 0 |]
  in
  let schedule =
    [ fetch ~at_cursor:0 ~disk:0 ~block:2 ~evict:(Some 1) ();
      (* starts at t=2, the instant b2's fetch deposits: accepted *)
      fetch ~at_cursor:0 ~delay:2 ~disk:1 ~block:3 ~evict:(Some 2) () ]
  in
  let s = ok_stats (Simulate.run inst schedule) in
  Alcotest.(check int) "stall" 2 s.Simulate.stall_time

let test_elapsed_equals_n_plus_stall () =
  let inst = example1 () in
  let schedule =
    [ fetch ~at_cursor:2 ~block:4 ~evict:(Some 1) ();
      fetch ~at_cursor:5 ~delay:1 ~block:1 ~evict:(Some 2) () ]
  in
  let s = ok_stats (Simulate.run inst schedule) in
  Alcotest.(check int) "elapsed = n + stall"
    (Array.length inst.Instance.seq + s.Simulate.stall_time)
    s.Simulate.elapsed_time

(* ------------------------------------------------------------------ *)
(* Instance validation. *)

let test_instance_validation () =
  let check_invalid name f =
    match f () with
    | exception Instance.Invalid _ -> ()
    | _ -> Alcotest.fail (name ^ ": expected Invalid")
  in
  check_invalid "zero k" (fun () ->
      Instance.single_disk ~k:0 ~fetch_time:1 ~initial_cache:[] [| 0 |]);
  check_invalid "zero F" (fun () ->
      Instance.single_disk ~k:1 ~fetch_time:0 ~initial_cache:[] [| 0 |]);
  check_invalid "initial cache too large" (fun () ->
      Instance.single_disk ~k:1 ~fetch_time:1 ~initial_cache:[ 0; 1 ] [| 0; 1 |]);
  check_invalid "duplicate initial cache" (fun () ->
      Instance.single_disk ~k:3 ~fetch_time:1 ~initial_cache:[ 0; 0 ] [| 0 |]);
  check_invalid "bad disk map" (fun () ->
      Instance.parallel ~k:2 ~fetch_time:1 ~num_disks:1 ~disk_of:[| 1 |] ~initial_cache:[]
        [| 0 |])

let test_warm_initial_cache () =
  let seq = [| 3; 1; 3; 2; 0; 1 |] in
  Alcotest.(check (list int)) "first distinct" [ 3; 1; 2 ]
    (Instance.warm_initial_cache ~k:3 seq);
  Alcotest.(check (list int)) "k larger than universe" [ 3; 1; 2; 0 ]
    (Instance.warm_initial_cache ~k:10 seq)

(* ------------------------------------------------------------------ *)
(* Next-reference oracle. *)

let test_next_ref () =
  let seq = [| 0; 1; 0; 2; 1; 0 |] in
  let nr = Next_ref.build seq ~num_blocks:3 in
  Alcotest.(check int) "next of r1 (b0)" 2 (Next_ref.next_after_same nr 0);
  Alcotest.(check int) "next of r3 (b0)" 5 (Next_ref.next_after_same nr 2);
  Alcotest.(check int) "next of r6 (b0) = none" 6 (Next_ref.next_after_same nr 5);
  Alcotest.(check int) "b1 at/after 0" 1 (Next_ref.next_at_or_after nr 1 0);
  Alcotest.(check int) "b1 at/after 2" 4 (Next_ref.next_at_or_after nr 1 2);
  Alcotest.(check int) "b2 after 3" 6 (Next_ref.next_strictly_after nr 2 3);
  Alcotest.(check int) "count b0" 3 (Next_ref.count nr 0);
  Alcotest.(check int) "first b2" 3 (Next_ref.first_request nr 2);
  Alcotest.(check int) "last b1" 4 (Next_ref.last_request nr 1);
  Alcotest.(check bool) "b2 requested after 4" false (Next_ref.is_requested_at_or_after nr 2 4)

let prop_next_ref_consistent =
  QCheck2.Test.make ~count:300 ~name:"next_ref agrees with linear scan"
    QCheck2.Gen.(pair (list_size (int_range 1 40) (int_range 0 5)) (int_range 0 5))
    (fun (l, b) ->
       let seq = Array.of_list l in
       let nr = Next_ref.build seq ~num_blocks:6 in
       let n = Array.length seq in
       let ok = ref true in
       for pos = 0 to n do
         let expected =
           let r = ref n in
           for i = n - 1 downto pos do
             if seq.(i) = b then r := i
           done;
           !r
         in
         if Next_ref.next_at_or_after nr b pos <> expected then ok := false
       done;
       !ok)

(* Random schedules never make the executor crash: they are either rejected
   with a reason or accepted with consistent stats. *)
let prop_executor_total =
  let gen =
    QCheck2.Gen.(
      let* n = int_range 1 20 in
      let* nblocks = int_range 2 6 in
      let* seq = array_size (return n) (int_range 0 (nblocks - 1)) in
      let* k = int_range 1 4 in
      let* fetches =
        list_size (int_range 0 6)
          (let* at_cursor = int_range 0 n in
           let* delay = int_range 0 3 in
           let* block = int_range 0 (nblocks - 1) in
           let* evict = opt (int_range 0 (nblocks - 1)) in
           return (at_cursor, delay, block, evict))
      in
      return (seq, k, fetches))
  in
  QCheck2.Test.make ~count:500 ~name:"executor total on random schedules" gen
    (fun (seq, k, fetches) ->
       let inst =
         Instance.single_disk ~k ~fetch_time:3
           ~initial_cache:(Instance.warm_initial_cache ~k seq)
           seq
       in
       let schedule =
         List.map
           (fun (at_cursor, delay, block, evict) ->
              Fetch_op.make ~at_cursor ~delay ~block ~evict ())
           fetches
       in
       match Simulate.run inst schedule with
       | Error _ -> true
       | Ok s ->
         s.Simulate.elapsed_time = Array.length seq + s.Simulate.stall_time
         && s.Simulate.stall_time >= 0
         && s.Simulate.peak_occupancy <= k)

let props =
  List.map QCheck_alcotest.to_alcotest [ prop_next_ref_consistent; prop_executor_total ]

let () =
  Alcotest.run "disksim"
    [ ( "paper examples",
        [ Alcotest.test_case "example 1 naive (stall 3)" `Quick test_example1_naive;
          Alcotest.test_case "example 1 better (stall 1)" `Quick test_example1_better;
          Alcotest.test_case "example 1 deadlock" `Quick test_example1_no_fetch_deadlock;
          Alcotest.test_case "example 2 paper schedule (stall 3)" `Quick test_example2_paper_schedule;
          Alcotest.test_case "example 2 overlap benefits" `Quick test_example2_parallel_overlap ] );
      ( "executor errors",
        [ Alcotest.test_case "busy disk" `Quick test_reject_busy_disk;
          Alcotest.test_case "fetch cached block" `Quick test_reject_fetch_cached_block;
          Alcotest.test_case "evict absent block" `Quick test_reject_evict_absent;
          Alcotest.test_case "typed exception from _exn wrappers" `Quick
            test_exn_wrappers_raise_typed;
          Alcotest.test_case "capacity exceeded" `Quick test_reject_capacity;
          Alcotest.test_case "extra slots" `Quick test_extra_slots_allow_overcommit;
          Alcotest.test_case "evict during in-flight fetch" `Quick test_reject_evict_in_flight;
          Alcotest.test_case "evict at completion instant" `Quick test_evict_at_completion_instant_ok;
          Alcotest.test_case "wrong disk" `Quick test_reject_wrong_disk;
          Alcotest.test_case "elapsed = n + stall" `Quick test_elapsed_equals_n_plus_stall ] );
      ( "instances",
        [ Alcotest.test_case "validation" `Quick test_instance_validation;
          Alcotest.test_case "warm cache" `Quick test_warm_initial_cache;
          Alcotest.test_case "next_ref" `Quick test_next_ref ] );
      ("properties", props) ]
