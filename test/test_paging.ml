(* Tests for the pure paging substrate (MIN/LRU/FIFO). *)

let inst ?(k = 3) ?init seq =
  let initial_cache =
    match init with Some l -> l | None -> Instance.warm_initial_cache ~k seq
  in
  Instance.single_disk ~k ~fetch_time:1 ~initial_cache seq

(* Classic MIN example: with k = 3 and the sequence below, Belady's choices
   are forced and well known. *)
let test_min_textbook () =
  (* seq: 0 1 2 3 0 1 4 0 1 2 3 4 with k=3 cold-ish start *)
  let i = inst ~k:3 ~init:[ 0; 1; 2 ] [| 0; 1; 2; 3; 0; 1; 4; 0; 1; 2; 3; 4 |] in
  let r = Paging.min_offline i in
  (* Misses: 3 (evict 2: next refs 0@4,1@5,2@9 -> evict furthest=2);
     4 (at pos 6: cache {0,1,3}: next 0@7 1@8 3@10 -> evict 3);
     2 (at pos 9: cache {0,1,4}: 0 never, 1 never... 0,1 not requested
     again; tie -> evict smaller id 0);
     3 (pos 10: cache {1,2,4}? after fetching 2 evicting 0:
     {1,2,4}: 1 never, 4@11 -> evict 1);
     total 4 misses. *)
  Alcotest.(check int) "misses" 4 r.Paging.misses;
  let evs = List.map (fun (x : Paging.replacement) -> (x.position, x.fetched, x.evicted)) r.Paging.replacements in
  Alcotest.(check bool) "first replacement evicts 2" true
    (List.mem (3, 3, Some 2) evs);
  Alcotest.(check bool) "second replacement evicts 3" true
    (List.mem (6, 4, Some 3) evs)

let test_min_no_misses () =
  let i = inst ~k:2 ~init:[ 0; 1 ] [| 0; 1; 0; 1; 1; 0 |] in
  Alcotest.(check int) "no misses" 0 (Paging.min_offline i).Paging.misses

let test_min_cold_start () =
  let i = inst ~k:2 ~init:[] [| 0; 1; 0 |] in
  let r = Paging.min_offline i in
  Alcotest.(check int) "2 misses" 2 r.Paging.misses;
  (* Cache not full: no evictions. *)
  Alcotest.(check bool) "no evictions" true
    (List.for_all (fun (x : Paging.replacement) -> x.evicted = None) r.Paging.replacements)

let test_lru_loop_worst_case () =
  (* Loop of k+1 blocks: LRU misses every request after warmup, MIN does
     much better. *)
  let seq = Workload.loop_pattern ~n:40 ~loop_len:4 in
  let i = inst ~k:3 ~init:[ 0; 1; 2 ] seq in
  let lru = (Paging.lru i).Paging.misses in
  let min = (Paging.min_offline i).Paging.misses in
  Alcotest.(check bool) (Printf.sprintf "lru %d >= 2 * min %d" lru min) true (lru >= 2 * min);
  (* LRU on this pattern faults on every request once past warmup. *)
  Alcotest.(check bool) "lru thrashes" true (lru >= 36)

let test_fifo_basic () =
  let i = inst ~k:2 ~init:[ 0; 1 ] [| 2; 0; 1 |] in
  let r = Paging.fifo i in
  (* FIFO evicts 0 (inserted first), then 1, then 2: every request misses. *)
  Alcotest.(check int) "misses" 3 r.Paging.misses

(* Properties: MIN is optimal (never more misses than LRU/FIFO); all
   policies produce consistent replacement logs. *)

let gen_paging_instance =
  QCheck2.Gen.(
    let* nblocks = int_range 2 8 in
    let* n = int_range 1 60 in
    let* seq = array_size (return n) (int_range 0 (nblocks - 1)) in
    let* k = int_range 1 5 in
    return (inst ~k seq))

let prop_min_optimal =
  QCheck2.Test.make ~count:400 ~name:"MIN <= LRU and MIN <= FIFO" gen_paging_instance
    (fun i ->
       let m = (Paging.min_offline i).Paging.misses in
       m <= (Paging.lru i).Paging.misses && m <= (Paging.fifo i).Paging.misses)

(* Replaying a policy's replacement log must serve every request. *)
let replay (i : Instance.t) (r : Paging.result) : bool =
  let num_blocks = Instance.num_blocks i in
  let in_cache = Array.make num_blocks false in
  List.iter (fun b -> in_cache.(b) <- true) i.Instance.initial_cache;
  let count = ref (List.length i.Instance.initial_cache) in
  let reps = ref r.Paging.replacements in
  let ok = ref true in
  Array.iteri
    (fun pos b ->
       (match !reps with
        | rep :: rest when rep.Paging.position = pos ->
          if rep.Paging.fetched <> b then ok := false;
          (match rep.Paging.evicted with
           | Some e ->
             if not in_cache.(e) then ok := false;
             in_cache.(e) <- false;
             decr count
           | None -> ());
          in_cache.(b) <- true;
          incr count;
          if !count > i.Instance.cache_size then ok := false;
          reps := rest
        | _ -> ());
       if not in_cache.(b) then ok := false)
    i.Instance.seq;
  !ok && !reps = []

let prop_replay_consistent =
  QCheck2.Test.make ~count:300 ~name:"replacement logs replay cleanly" gen_paging_instance
    (fun i ->
       replay i (Paging.min_offline i) && replay i (Paging.lru i) && replay i (Paging.fifo i))

(* MIN's miss count equals Conservative's fetch count (by construction). *)
let prop_min_matches_conservative =
  QCheck2.Test.make ~count:200 ~name:"MIN misses = Conservative fetches" gen_paging_instance
    (fun i -> (Paging.min_offline i).Paging.misses = Conservative.num_fetches i)

(* The heap-based MIN (Conservative's fast path) must reproduce the seed
   fold-based MIN exactly - every replacement, every eviction, the final
   cache - not just the miss count. *)
let prop_min_fast_identical =
  QCheck2.Test.make ~count:400 ~name:"min_offline_fast = min_offline" gen_paging_instance
    (fun i -> Paging.min_offline_fast i = Paging.min_offline i)

let test_clock_second_chance () =
  (* Hand-traced: k = 2, frames [0; 1], seq 0 1 2 1 3.
     r3 (miss on 2): both bits set, the hand clears 0 then 1 and returns to
     frame 0, evicting 0 -> frames [2; 1], hand at frame 1; the inserted
     block 2 gets its bit set.
     r4: hit on 1 (sets its bit again).
     r5 (miss on 3): hand clears 1, then clears 2, and returns to frame 1
     whose bit is now clear -> evicts 1 -> frames [2; 3]. *)
  let i = inst ~k:2 ~init:[ 0; 1 ] [| 0; 1; 2; 1; 3 |] in
  let r = Paging.clock i in
  Alcotest.(check int) "misses" 2 r.Paging.misses;
  let evs = List.map (fun (x : Paging.replacement) -> (x.position, x.fetched, x.evicted)) r.Paging.replacements in
  Alcotest.(check bool) "evicts 0 then 1" true
    (evs = [ (2, 2, Some 0); (4, 3, Some 1) ])

let test_marking_deterministic_with_seed () =
  let i = inst ~k:3 [| 0; 1; 2; 3; 4; 0; 1; 2; 3; 4; 0; 1 |] in
  let a = Paging.marking ~seed:5 i and b = Paging.marking ~seed:5 i in
  Alcotest.(check int) "same misses" a.Paging.misses b.Paging.misses;
  Alcotest.(check bool) "same replacements" true (a.Paging.replacements = b.Paging.replacements)

let prop_min_optimal_vs_all =
  QCheck2.Test.make ~count:300 ~name:"MIN <= CLOCK and MIN <= MARKING" gen_paging_instance
    (fun i ->
       let m = (Paging.min_offline i).Paging.misses in
       m <= (Paging.clock i).Paging.misses && m <= (Paging.marking ~seed:7 i).Paging.misses)

let prop_replay_clock_marking =
  QCheck2.Test.make ~count:200 ~name:"CLOCK/MARKING logs replay cleanly" gen_paging_instance
    (fun i -> replay i (Paging.clock i) && replay i (Paging.marking ~seed:3 i))

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_min_optimal; prop_replay_consistent; prop_min_matches_conservative;
      prop_min_fast_identical; prop_min_optimal_vs_all; prop_replay_clock_marking ]

let () =
  Alcotest.run "paging"
    [ ( "unit",
        [ Alcotest.test_case "MIN textbook" `Quick test_min_textbook;
          Alcotest.test_case "MIN no misses" `Quick test_min_no_misses;
          Alcotest.test_case "MIN cold start" `Quick test_min_cold_start;
          Alcotest.test_case "LRU loop worst case" `Quick test_lru_loop_worst_case;
          Alcotest.test_case "FIFO basic" `Quick test_fifo_basic;
          Alcotest.test_case "CLOCK second chance" `Quick test_clock_second_chance;
          Alcotest.test_case "MARKING deterministic" `Quick test_marking_deterministic_with_seed ] );
      ("properties", props) ]
