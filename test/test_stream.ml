(* Streaming engine tests: source twins match the batch generators,
   full-window runs are byte-identical to the batch schedulers (spot
   checks here; the fuzz corpus sweep lives in the Stream oracle class),
   bounded-window schedules replay exactly, and stall responds
   monotonically to lookahead. *)

module S = Stream
module P = Prefetcher

let drain src =
  let rec go acc = match src.S.pull () with None -> List.rev acc | Some b -> go (b :: acc) in
  go []

(* ------------------------------------------------------------------ *)
(* Sources. *)

(* Each streaming twin consumes its RNG in request order exactly like
   the batch generator, so a [take n] prefix equals the batch array. *)
let test_source_twins () =
  let cases =
    [ ("uniform",
       Workload.uniform ~seed:7 ~n:500 ~num_blocks:40,
       S.uniform ~seed:7 ~num_blocks:40);
      ("zipf",
       Workload.zipf ~seed:11 ~alpha:0.9 ~n:500 ~num_blocks:64,
       S.zipf ~seed:11 ~alpha:0.9 ~num_blocks:64);
      ("scan",
       Workload.sequential_scan ~n:500 ~num_blocks:37,
       S.sequential_scan ~num_blocks:37);
      ("phase_shift",
       Workload.phase_shift ~seed:3 ~n:500 ~num_blocks:100 ~phase_len:41 ~working_set:16,
       S.phase_shift ~seed:3 ~num_blocks:100 ~phase_len:41 ~working_set:16) ]
  in
  List.iter
    (fun (name, batch, twin) ->
      Alcotest.(check (list int)) name (Array.to_list batch) (drain (S.take 500 twin)))
    cases

let test_take_and_exhaustion () =
  let src = S.of_list [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "of_list drains" [ 1; 2; 3 ] (drain src);
  Alcotest.(check (option int)) "exhausted source stays exhausted" None (src.S.pull ());
  Alcotest.(check (list int)) "take truncates" [ 0; 1 ]
    (drain (S.take 2 (S.sequential_scan ~num_blocks:9)));
  Alcotest.(check (list int)) "take beyond end" [ 5; 6 ] (drain (S.take 10 (S.of_list [ 5; 6 ])))

(* ------------------------------------------------------------------ *)
(* Registry. *)

let test_registry () =
  Alcotest.(check (list string)) "built-ins present"
    [ "aggressive"; "delay"; "demand"; "markov"; "obl" ]
    (P.names ());
  Alcotest.(check bool) "find hit" true (Option.is_some (P.find "aggressive"));
  Alcotest.(check bool) "find miss" true (Option.is_none (P.find "nope"));
  (match P.register ~name:"aggressive" ~doc:"dup" (fun ~fetch_time:_ -> P.demand ()) with
  | () -> Alcotest.fail "duplicate registration accepted"
  | exception Invalid_argument _ -> ());
  List.iter
    (fun (name, doc) -> Alcotest.(check bool) (name ^ " documented") true (doc <> ""))
    (P.all ())

(* ------------------------------------------------------------------ *)
(* Full-window equivalence (random instances; the ck_gen corpus sweep is
   test_corpus_full_window below and the fuzz oracle in CI). *)

let gen_instance ?(max_n = 24) ?(max_blocks = 8) ?(max_k = 5) ?(max_f = 5) () =
  QCheck2.Gen.(
    let* nblocks = int_range 2 max_blocks in
    let* n = int_range 1 max_n in
    let* seq = array_size (return n) (int_range 0 (nblocks - 1)) in
    let* k = int_range 1 max_k in
    let* f = int_range 1 max_f in
    let init = Instance.warm_initial_cache ~k seq in
    return (Instance.single_disk ~k ~fetch_time:f ~initial_cache:init seq))

let ported =
  [ ("aggressive", (fun () -> P.aggressive ()), fun i -> Aggressive.schedule i);
    ("delay0", (fun () -> P.delay ~d:0 ()), fun i -> Delay.schedule ~d:0 i);
    ("delay1", (fun () -> P.delay ~d:1 ()), fun i -> Delay.schedule ~d:1 i);
    ("delay3", (fun () -> P.delay ~d:3 ()), fun i -> Delay.schedule ~d:3 i) ]

let stream_run ~window pol (inst : Instance.t) =
  S.run ~record_schedule:true ~initial_cache:inst.Instance.initial_cache
    ~k:inst.Instance.cache_size ~fetch_time:inst.Instance.fetch_time ~window
    (S.of_array inst.Instance.seq)
    pol

let prop_full_window_byte_identical =
  QCheck2.Test.make ~count:300 ~name:"streaming at w=n = batch schedule" (gen_instance ())
    (fun inst ->
      let n = Instance.length inst in
      List.for_all
        (fun (name, build, batch_of) ->
          let batch = batch_of inst in
          let out = stream_run ~window:(Stdlib.max 1 n) (build ()) inst in
          if out.S.schedule <> Some batch then
            QCheck2.Test.fail_reportf "%s diverges on %s" name
              (Format.asprintf "%a" Instance.pp inst)
          else if out.S.demand_fetches <> 0 then
            QCheck2.Test.fail_reportf "%s: demand path fired at w=n on %s" name
              (Format.asprintf "%a" Instance.pp inst)
          else true)
        ported)

(* The corpus sweep the issue pins: every ported scheduler, every
   single-disk fuzz case, byte-identical at w=n (plus bounded-window
   replay) via the Stream oracle class. *)
let test_corpus_full_window () =
  for index = 0 to 80 do
    let case = Ck_gen.generate_single_disk ~seed:42 ~index in
    List.iter
      (fun (o : Ck_oracle.t) ->
        match o.Ck_oracle.check case.Ck_gen.inst with
        | Ck_oracle.Pass | Ck_oracle.Skip _ -> ()
        | Ck_oracle.Fail { msg; _ } ->
          Alcotest.failf "%s on corpus case %d (%s): %s" o.Ck_oracle.name index
            case.Ck_gen.descr msg)
      Ck_stream.all
  done

(* ------------------------------------------------------------------ *)
(* Bounded windows: replay + accounting at a random window. *)

let prop_bounded_window_replays =
  QCheck2.Test.make ~count:300 ~name:"bounded-window schedules replay exactly"
    QCheck2.Gen.(pair (gen_instance ()) (int_range 1 24))
    (fun (inst, w) ->
      List.for_all
        (fun pname ->
          let build = Option.get (P.find pname) in
          let out = stream_run ~window:w (build ~fetch_time:inst.Instance.fetch_time) inst in
          let sched = Option.get out.S.schedule in
          match Simulate.run inst sched with
          | Error e ->
            QCheck2.Test.fail_reportf "%s at w=%d rejected at t=%d: %s on %s" pname w
              e.Simulate.at_time e.Simulate.reason
              (Format.asprintf "%a" Instance.pp inst)
          | Ok stats ->
            if
              stats.Simulate.stall_time <> out.S.stall_time
              || stats.Simulate.elapsed_time <> out.S.elapsed_time
            then
              QCheck2.Test.fail_reportf
                "%s at w=%d: stream says stall=%d elapsed=%d, executor stall=%d elapsed=%d on %s"
                pname w out.S.stall_time out.S.elapsed_time stats.Simulate.stall_time
                stats.Simulate.elapsed_time
                (Format.asprintf "%a" Instance.pp inst)
            else true)
        (P.names ()))

(* ------------------------------------------------------------------ *)
(* Window response.

   Pointwise monotonicity (stall non-increasing in w) is empirically
   FALSE for every ported policy - greedy rules can use extra lookahead
   to commit to a worse eviction, the same gap Theorem 1 prices in; a
   probe over the qcheck corpus finds per-step violations for
   aggressive and delay alike (e.g. aggressive on n=13 k=5 F=2 going
   from stall 0 at w=5 to stall 1 at w=6).  What does hold, and is
   pinned here: the window saturates at the trace length (any w >= n is
   byte-identical to w = n), and no window ever beats the offline
   optimum.  The downward *trend* of stall in w is documented as a
   measured table in EXPERIMENTS.md rather than asserted pointwise. *)

let prop_window_saturates =
  QCheck2.Test.make ~count:200 ~name:"windows beyond n are byte-identical to w=n"
    QCheck2.Gen.(pair (gen_instance ()) (int_range 0 30))
    (fun (inst, extra) ->
      let n = Stdlib.max 1 (Instance.length inst) in
      List.for_all
        (fun (name, build, _) ->
          let at_n = stream_run ~window:n (build ()) inst in
          let beyond = stream_run ~window:(n + extra) (build ()) inst in
          if at_n.S.schedule <> beyond.S.schedule then
            QCheck2.Test.fail_reportf "%s: w=%d differs from w=n on %s" name (n + extra)
              (Format.asprintf "%a" Instance.pp inst)
          else true)
        ported)

let prop_never_beats_opt =
  QCheck2.Test.make ~count:150 ~name:"no window beats the offline optimum"
    QCheck2.Gen.(pair (gen_instance ~max_n:16 ~max_blocks:6 ()) (int_range 1 16))
    (fun (inst, w) ->
      let opt = (Opt_single.solve inst).Opt_single.stall in
      List.for_all
        (fun pname ->
          let build = Option.get (P.find pname) in
          let out = stream_run ~window:w (build ~fetch_time:inst.Instance.fetch_time) inst in
          if out.S.stall_time < opt then
            QCheck2.Test.fail_reportf "%s at w=%d: stall %d below OPT %d on %s" pname w
              out.S.stall_time opt
              (Format.asprintf "%a" Instance.pp inst)
          else true)
        (P.names ()))

(* ------------------------------------------------------------------ *)

let qsuite = List.map QCheck_alcotest.to_alcotest
  [ prop_full_window_byte_identical; prop_bounded_window_replays; prop_window_saturates;
    prop_never_beats_opt ]

let () =
  Alcotest.run "stream"
    [ ("sources",
       [ Alcotest.test_case "generator twins" `Quick test_source_twins;
         Alcotest.test_case "take / exhaustion" `Quick test_take_and_exhaustion ]);
      ("registry", [ Alcotest.test_case "registry" `Quick test_registry ]);
      ("equivalence",
       Alcotest.test_case "ck_gen corpus full-window + replay" `Slow test_corpus_full_window
       :: qsuite) ]
