(* Unit tests for the shared bit-set helpers and the monotone bucket
   queue backing the branch-and-bound engine. *)

let naive_popcount m =
  let rec go m acc = if m = 0 then acc else go (m land (m - 1)) (acc + 1) in
  go m 0

let test_popcount () =
  Alcotest.(check int) "empty" 0 (Bits.popcount 0);
  Alcotest.(check int) "one" 1 (Bits.popcount 1);
  Alcotest.(check int) "full 62" 62 (Bits.popcount ((1 lsl 62) - 1));
  let st = Random.State.make [| 7 |] in
  for _ = 1 to 1000 do
    let m = Random.State.bits st lor (Random.State.bits st lsl 30) lor (Random.State.bits st lsl 60) in
    let m = m land ((1 lsl 62) - 1) in
    Alcotest.(check int) "random vs naive" (naive_popcount m) (Bits.popcount m)
  done

let test_set_ops () =
  let m = Bits.of_list [ 0; 3; 61 ] in
  Alcotest.(check bool) "mem 3" true (Bits.mem m 3);
  Alcotest.(check bool) "mem 4" false (Bits.mem m 4);
  Alcotest.(check int) "add idempotent" m (Bits.add m 3);
  Alcotest.(check bool) "remove" false (Bits.mem (Bits.remove m 3) 3);
  Alcotest.(check int) "remove absent is id" m (Bits.remove m 4);
  Alcotest.(check bool) "subset" true (Bits.subset (Bits.of_list [ 0; 61 ]) m);
  Alcotest.(check bool) "not subset" false (Bits.subset (Bits.of_list [ 0; 4 ]) m);
  Alcotest.(check bool) "empty subset of all" true (Bits.subset 0 m);
  Alcotest.(check int) "lowest" 0 (Bits.lowest m);
  Alcotest.(check int) "lowest after remove" 3 (Bits.lowest (Bits.remove m 0));
  Alcotest.(check int) "lowest empty" (-1) (Bits.lowest 0)

let test_iteration () =
  let l = [ 1; 5; 8; 40; 61 ] in
  let m = Bits.of_list l in
  Alcotest.(check (list int)) "to_list ascending" l (Bits.to_list m);
  let seen = ref [] in
  Bits.iter (fun b -> seen := b :: !seen) m;
  Alcotest.(check (list int)) "iter ascending" l (List.rev !seen);
  Alcotest.(check int) "fold sum" (List.fold_left ( + ) 0 l)
    (Bits.fold (fun acc b -> acc + b) 0 m);
  Alcotest.check_raises "of_list out of range"
    (Invalid_argument "Bits.of_list: bit 62 outside [0, 62)") (fun () ->
      ignore (Bits.of_list [ 62 ]))

let test_bucketq_order () =
  let q = Bucketq.create ~hint:2 () in
  Alcotest.(check bool) "fresh empty" true (Bucketq.is_empty q);
  Bucketq.push q ~prio:5 "a";
  Bucketq.push q ~prio:1 "b";
  Bucketq.push q ~prio:5 "c";
  Bucketq.push q ~prio:130 "far";  (* forces growth past the hint *)
  Alcotest.(check int) "length" 4 (Bucketq.length q);
  (* Minimum priority first; LIFO within a bucket. *)
  Alcotest.(check (option (pair int string))) "pop b" (Some (1, "b")) (Bucketq.pop q);
  Alcotest.(check (option (pair int string))) "pop c (LIFO)" (Some (5, "c")) (Bucketq.pop q);
  (* Pushing at or above the cursor is still allowed... *)
  Bucketq.push q ~prio:5 "d";
  Alcotest.(check (option (pair int string))) "pop d" (Some (5, "d")) (Bucketq.pop q);
  Alcotest.(check (option (pair int string))) "pop a" (Some (5, "a")) (Bucketq.pop q);
  (* ...pushing below it violates monotonicity. *)
  Alcotest.check_raises "monotone violation"
    (Invalid_argument "Bucketq.push: priority 4 below the monotone cursor 5") (fun () ->
      Bucketq.push q ~prio:4 "bad");
  Alcotest.(check (option (pair int string))) "pop far" (Some (130, "far")) (Bucketq.pop q);
  Alcotest.(check (option (pair int string))) "drained" None (Bucketq.pop q);
  Alcotest.(check bool) "empty again" true (Bucketq.is_empty q)

let test_bucketq_dijkstra_shape () =
  (* Priorities arriving in the non-decreasing pattern of a 0..F-cost
     Dijkstra drain in globally sorted order. *)
  let q = Bucketq.create () in
  let st = Random.State.make [| 11 |] in
  let popped = ref [] in
  Bucketq.push q ~prio:0 0;
  let pushed = ref 1 in
  let rec drain () =
    match Bucketq.pop q with
    | None -> ()
    | Some (prio, _) ->
      popped := prio :: !popped;
      if !pushed < 200 then begin
        (* successors cost 0..4 more, as in the engine *)
        for _ = 1 to 2 do
          Bucketq.push q ~prio:(prio + Random.State.int st 5) !pushed;
          incr pushed
        done
      end;
      drain ()
  in
  drain ();
  let order = List.rev !popped in
  Alcotest.(check bool) "popped order non-decreasing" true
    (fst
       (List.fold_left
          (fun (ok, prev) p -> (ok && p >= prev, p))
          (true, 0) order))

let () =
  Alcotest.run "bits"
    [ ( "bits",
        [ Alcotest.test_case "popcount" `Quick test_popcount;
          Alcotest.test_case "set operations" `Quick test_set_ops;
          Alcotest.test_case "iteration" `Quick test_iteration ] );
      ( "bucketq",
        [ Alcotest.test_case "order and monotonicity" `Quick test_bucketq_order;
          Alcotest.test_case "dijkstra drain sorted" `Quick test_bucketq_dijkstra_shape ] ) ]
