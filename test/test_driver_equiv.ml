(* Driver-equivalence suite (PR 5).

   The fast driver engine (monotone next-missing frontiers, the
   lazy-invalidation eviction heap, the event-skipping clock) must be
   observationally identical to the seed implementation, which lives on
   as Driver.Reference.  "Identical" here is the strongest available
   check: byte-identical Fetch_op.schedules - same fetches, same
   anchors, same delays, same evictions, same order - for every
   driver-based scheduler across the conformance fuzzer's tiered corpus
   plus a scale-ish smoke, with stall accounting cross-checked through
   the executor.

   Also the unit tests for Evict_heap's lazy invalidation. *)

let fail_diff ~descr ~alg (fast : Fetch_op.schedule) (ref_ : Fetch_op.schedule) =
  let pp sched =
    String.concat "; "
      (List.map (fun op -> Format.asprintf "%a" Fetch_op.pp op) sched)
  in
  Alcotest.failf "%s: %s schedules diverge@.fast: %s@.ref:  %s" alg descr (pp fast) (pp ref_)

(* Schedulers under test.  Delay at several d (0 = Aggressive's twin,
   large = Conservative-ish), Online at several lookaheads; the parallel
   entries only run on multi-disk instances, the single-disk-only ones
   skip them. *)
let single_disk_algorithms =
  [ ("aggressive", Aggressive.schedule);
    ("conservative", Conservative.schedule);
    ("delay(0)", Delay.schedule ~d:0);
    ("delay(1)", Delay.schedule ~d:1);
    ("delay(3)", Delay.schedule ~d:3);
    ("combination", Combination.schedule);
    ("online(1)", Online.schedule (Online.aggressive ~lookahead:1));
    ("online(4)", Online.schedule (Online.aggressive ~lookahead:4));
    ("online(8)", Online.schedule (Online.aggressive ~lookahead:8));
    (* Delayed online variants exercise the fast path's class-B window
       (blocks referenced inside [i, i+d') only) against the reference
       score-everything fold. *)
    ("online(4,d2)", Online.schedule Online.{ lookahead = 4; delay = 2 });
    ("online(8,d1)", Online.schedule Online.{ lookahead = 8; delay = 1 });
    ("online(8,d3)", Online.schedule Online.{ lookahead = 8; delay = 3 }) ]

let any_disk_algorithms =
  [ ("fixed-horizon", Fixed_horizon.schedule);
    ("reverse-aggressive", Reverse_aggressive.schedule) ]

let parallel_algorithms =
  [ ("aggressive-D", Parallel_greedy.aggressive_schedule);
    ("conservative-D", Parallel_greedy.conservative_schedule) ]

let algorithms_for (inst : Instance.t) =
  if inst.Instance.num_disks = 1 then single_disk_algorithms @ any_disk_algorithms
  else any_disk_algorithms @ parallel_algorithms

let check_instance ~descr inst =
  List.iter
    (fun (alg, schedule) ->
       let fast = schedule inst in
       let ref_ = Driver.with_engine Driver.Reference (fun () -> schedule inst) in
       if fast <> ref_ then fail_diff ~descr ~alg fast ref_;
       (* Replay sanity: the shared schedule must be executor-valid. *)
       match Simulate.run inst fast with
       | Ok _ -> ()
       | Error e -> Alcotest.failf "%s: %s invalid at t=%d: %s" descr alg e.Simulate.at_time e.Simulate.reason)
    (algorithms_for inst)

(* The ck_gen tiered corpus: deterministic cases cycling Tiny / Single /
   Parallel, exactly what ipc fuzz feeds its oracles. *)
let test_corpus_equivalence () =
  for index = 0 to 89 do
    let case = Ck_gen.generate ~seed:7 ~index in
    check_instance
      ~descr:(Printf.sprintf "case %d (%s)" index case.Ck_gen.descr)
      case.Ck_gen.inst
  done

(* Medium-size single-disk instances: large enough for real frontier
   movement, eviction-heap churn and long stall runs, small enough that
   the quadratic reference engine stays fast. *)
let test_medium_equivalence () =
  List.iter
    (fun (fam : Workload.family) ->
       List.iter
         (fun (k, f) ->
            let seq = fam.Workload.generate ~seed:5 ~n:2_000 ~num_blocks:64 in
            let inst = Workload.single_instance ~k ~fetch_time:f seq in
            check_instance
              ~descr:(Printf.sprintf "%s n=2000 k=%d F=%d" fam.Workload.name k f)
              inst)
         [ (4, 7); (16, 4) ])
    Workload.scale_families

(* The paper's own lower-bound family: adversarial for Aggressive's
   eviction choice, so a good frontier-clamping stress. *)
let test_theorem2_equivalence () =
  let inst = Workload.theorem2_lower_bound ~k:9 ~fetch_time:3 ~phases:12 in
  check_instance ~descr:"theorem2 k=9 F=3" inst

(* Delayed online used to livelock here in both engines: with the victim
   scored from i + d' only, it evicted the block the cursor was stalled
   on and ping-ponged blocks 0/1 through the k = 1 cache forever.  The
   consistency gate (victim's next visible request from the cursor must
   land past the miss) makes it terminate; both engines must still agree
   and the executor must accept the schedule. *)
let test_online_delay_livelock () =
  let inst =
    Instance.single_disk ~k:1 ~fetch_time:2 ~initial_cache:[ 0 ]
      [| 0; 1; 0; 1; 0; 1 |]
  in
  List.iter
    (fun (la, dl) ->
       let cfg = Online.{ lookahead = la; delay = dl } in
       let fast = Online.schedule cfg inst in
       let ref_ = Driver.with_engine Driver.Reference (fun () -> Online.schedule cfg inst) in
       if fast <> ref_ then
         fail_diff ~descr:"livelock family" ~alg:(Printf.sprintf "online(%d,d%d)" la dl) fast ref_;
       match Simulate.run inst fast with
       | Ok _ -> ()
       | Error e ->
         Alcotest.failf "online(%d,d%d) invalid at t=%d: %s" la dl e.Simulate.at_time e.Simulate.reason)
    [ (4, 2); (2, 1); (8, 3); (1, 0) ]

(* Driver-level stall accounting must agree between engines too (the
   schedules being equal makes it so unless the event-skipping clock
   miscounts bulk stalls). *)
let test_stall_accounting () =
  let inst =
    Workload.single_instance ~k:6 ~fetch_time:9
      (Workload.sequential_scan ~n:500 ~num_blocks:50)
  in
  let fast = Driver.run inst ~decide:Aggressive.decide in
  let ref_ = Driver.with_engine Driver.Reference (fun () -> Driver.run inst ~decide:Aggressive.decide) in
  Alcotest.(check int) "stall" (Driver.stall_time ref_) (Driver.stall_time fast);
  Alcotest.(check int) "elapsed clock" (Driver.time ref_) (Driver.time fast);
  match Simulate.run inst (Driver.schedule fast) with
  | Ok s -> Alcotest.(check int) "executor stall" s.Simulate.stall_time (Driver.stall_time fast)
  | Error e -> Alcotest.failf "invalid: %s" e.Simulate.reason

(* ------------------------------------------------------------------ *)
(* Evict_heap unit tests. *)

let test_heap_basic () =
  let h = Evict_heap.create ~num_blocks:8 in
  Alcotest.(check (option (pair int int))) "empty" None (Evict_heap.peek h);
  Evict_heap.add h ~block:3 ~key:10;
  Evict_heap.add h ~block:1 ~key:25;
  Evict_heap.add h ~block:5 ~key:17;
  Alcotest.(check (option (pair int int))) "max" (Some (1, 25)) (Evict_heap.peek h);
  Evict_heap.remove h ~block:1;
  Alcotest.(check (option (pair int int))) "after remove" (Some (5, 17)) (Evict_heap.peek h);
  Alcotest.(check int) "live" 2 (Evict_heap.size h);
  Alcotest.(check bool) "mem" false (Evict_heap.mem h 1);
  Alcotest.(check int) "key_of" 10 (Evict_heap.key_of h 3)

let test_heap_tie_break () =
  (* Equal keys resolve towards the smallest block id - the seed scan's
     tie-break, load-bearing for byte-identical schedules. *)
  let h = Evict_heap.create ~num_blocks:8 in
  Evict_heap.add h ~block:6 ~key:9;
  Evict_heap.add h ~block:2 ~key:9;
  Evict_heap.add h ~block:4 ~key:9;
  Alcotest.(check (option (pair int int))) "smallest id wins" (Some (2, 9)) (Evict_heap.peek h)

let test_heap_lazy_invalidation () =
  let h = Evict_heap.create ~num_blocks:4 in
  Evict_heap.add h ~block:0 ~key:5;
  Evict_heap.add h ~block:1 ~key:9;
  (* Re-keying pushes a fresh entry and leaves the old one in place...  *)
  Evict_heap.add h ~block:1 ~key:2;
  Evict_heap.add h ~block:0 ~key:7;
  Alcotest.(check int) "stale entries accumulate" 4 (Evict_heap.heap_load h);
  Alcotest.(check int) "but live count tracks blocks" 2 (Evict_heap.size h);
  (* ... and peek discards the superseded top (0,5)/(1,9) lazily. *)
  Alcotest.(check (option (pair int int))) "peek sees only live keys" (Some (0, 7)) (Evict_heap.peek h);
  Alcotest.(check bool) "stale top collected" true (Evict_heap.heap_load h < 4);
  Evict_heap.remove h ~block:0;
  Alcotest.(check (option (pair int int))) "removal is lazy too" (Some (1, 2)) (Evict_heap.peek h);
  Evict_heap.remove h ~block:1;
  Alcotest.(check (option (pair int int))) "drained" None (Evict_heap.peek h);
  Alcotest.(check int) "no live entries" 0 (Evict_heap.size h)

let test_heap_rejects_negative_keys () =
  (* -1 is the internal no-live-entry sentinel; a negative key once made
     an Online recency entry unremovable (livelocked top_a).  The heap
     now refuses instead. *)
  let h = Evict_heap.create ~num_blocks:4 in
  Alcotest.check_raises "negative key"
    (Invalid_argument "Evict_heap.add: key must be >= 0")
    (fun () -> Evict_heap.add h ~block:1 ~key:(-1))

let test_heap_compaction () =
  (* Serve-style churn: re-key one block thousands of times without
     peeking.  Compaction must keep the physical heap O(live), not O(m). *)
  let h = Evict_heap.create ~num_blocks:4 in
  Evict_heap.add h ~block:2 ~key:1_000_000;
  for i = 0 to 9_999 do
    Evict_heap.add h ~block:0 ~key:i
  done;
  Alcotest.(check bool) "heap stays compact"
    true (Evict_heap.heap_load h <= 64 * 2);
  Alcotest.(check (option (pair int int))) "peek correct after churn"
    (Some (2, 1_000_000)) (Evict_heap.peek h)

let () =
  Alcotest.run "driver-equiv"
    [ ("fast-vs-reference",
       [ Alcotest.test_case "ck_gen corpus, all schedulers" `Quick test_corpus_equivalence;
         Alcotest.test_case "medium scale families" `Quick test_medium_equivalence;
         Alcotest.test_case "theorem-2 family" `Quick test_theorem2_equivalence;
         Alcotest.test_case "online delay livelock family" `Quick test_online_delay_livelock;
         Alcotest.test_case "stall accounting" `Quick test_stall_accounting ]);
      ("evict-heap",
       [ Alcotest.test_case "basic order" `Quick test_heap_basic;
         Alcotest.test_case "tie-break towards smaller id" `Quick test_heap_tie_break;
         Alcotest.test_case "lazy invalidation" `Quick test_heap_lazy_invalidation;
         Alcotest.test_case "rejects negative keys" `Quick test_heap_rejects_negative_keys;
         Alcotest.test_case "compaction bounds the heap" `Quick test_heap_compaction ]) ]
